//! The fleet simulator: N servers behind a front-end load balancer,
//! stepped epoch by epoch.
//!
//! Each epoch the balancer computes one load share per server (see
//! [`RoutingPolicy`]) after the autoscaler has decided which servers are
//! even awake (see [`crate::AutoscalePolicy`]); every server with a
//! non-zero share then runs a full single-server discrete-event
//! simulation at that share. Server-epochs are mutually independent by
//! construction — each derives all randomness from its own
//! `(fleet seed, server, epoch)` stream — so the whole grid fans out on
//! [`SweepExecutor`] and the fleet report is byte-identical at any
//! worker count.
//!
//! Servers with *zero* share are not simulated: an empty server's
//! steady state is closed-form (every core in the menu's deepest state,
//! uncore in PC6 when the menu allows it), and modeling it analytically
//! keeps a 64-server fleet at 30% load as cheap as the ~20 servers that
//! actually carry traffic.
//!
//! # Fleet chaos
//!
//! With [`FleetConfig::with_fleet_faults`] the run proceeds under a
//! deterministic [`FleetFaultPlan`]: servers crash mid-epoch and go
//! dark, racks fail together, links degrade, capacity throttles, and
//! unparks fail. The health/ejection reaction lives in
//! [`crate::health`]; this module handles the traffic consequences —
//! the requests a crashing server drops are re-offered to the survivors
//! in the next one or two epochs (deterministic jittered backoff), and
//! traffic with nowhere to go is shed into the
//! [`FleetDegradation`] ledger. Every fault draw and every retry split
//! is a pure function of `(seed, category, server, epoch)`, so chaotic
//! runs stay byte-identical at any `--jobs` and replay exactly from
//! their [`FleetFailureArtifact`].

use std::f64::consts::TAU;

use aw_cstates::{CState, FreqLevel};
use aw_exec::SweepExecutor;
use aw_faults::{
    FaultPlan, FaultSpec, FleetFailureArtifact, FleetFaultKind, FleetFaultPlan, FleetFaultRecord,
    FleetFaultSpec,
};
use aw_server::{
    HardwareModel, LatencyStats, PackageCState, RunOutput, ServerConfig, SimBuilder, WorkloadSpec,
};
use aw_sim::SampleSet;
use aw_sleep::{BreakEven, OpportunitySummary};
use aw_telemetry::MetricsRegistry;
use aw_types::{Joules, MilliWatts, Nanos, Ratio};

use crate::autoscaler::{AutoscalePolicy, Autoscaler};
use crate::health::HealthTracker;
use crate::policy::RoutingPolicy;
use crate::report::{FleetDegradation, FleetReport, FleetWindow};
use crate::stream::{
    epoch_counters, FleetEpochEvent, FleetObserver, NullFleetObserver, ServerEpochSnapshot,
    ServerRole,
};

/// How the fleet's aggregate offered load evolves over the run.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub enum LoadShape {
    /// Flat at `total_qps` for every epoch.
    Constant,
    /// One sine period over the whole run:
    /// `total_qps × (1 + amplitude · sin(2π · epoch / epochs))` — the
    /// scaled-down diurnal swing the autoscaler exists to track.
    Diurnal {
        /// Peak-to-mean swing, in `[0, 1)`.
        amplitude: f64,
    },
}

impl LoadShape {
    /// The load multiplier for `epoch` of `epochs`.
    #[must_use]
    pub fn factor(self, epoch: usize, epochs: usize) -> f64 {
        match self {
            LoadShape::Constant => 1.0,
            LoadShape::Diurnal { amplitude } => {
                let phase = TAU * epoch as f64 / epochs.max(1) as f64;
                // Floor keeps `scaled_qps` strictly positive even at
                // amplitude 1.0 troughs.
                (1.0 + amplitude * phase.sin()).max(0.01)
            }
        }
    }
}

/// A full fleet experiment: the server prototype, the workload
/// prototype, and the fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of servers behind the balancer.
    pub servers: usize,
    /// Per-server configuration prototype (cores, C-state menu, catalog,
    /// …). Its `duration`/`warmup` are overridden per epoch.
    pub server: ServerConfig,
    /// Per-server workload prototype; each server-epoch runs this
    /// workload rescaled to its routed share.
    pub workload: WorkloadSpec,
    /// Aggregate offered load at load factor 1.0 (requests/s).
    pub total_qps: f64,
    /// Epoch duration — the balancer's and autoscaler's decision period.
    pub epoch: Nanos,
    /// Number of epochs to run.
    pub epochs: usize,
    /// How the balancer splits load across servers.
    pub policy: RoutingPolicy,
    /// Fleet autoscaler; `None` keeps every server unparked.
    pub autoscale: Option<AutoscalePolicy>,
    /// Load evolution over the run.
    pub load: LoadShape,
    /// Fleet master seed; per-(server, epoch) streams are mixed from it.
    pub seed: u64,
    /// Fleet p99 SLO target each epoch window is judged against.
    pub slo_p99: Nanos,
    /// Fleet-level fault injection (crashes, rack outages, link
    /// degradation, throttles, unpark failures); `None` runs fair
    /// weather. An inert spec (`FleetFaultSpec::none()`) is byte-
    /// identical to `None` — the common-random-numbers contract.
    pub fleet_faults: Option<FleetFaultSpec>,
    /// Per-server (in-machine) fault injection applied to every
    /// simulated server-epoch; each derives its own fault seed from the
    /// spec's via the fleet's `(seed, server, epoch)` mixer. `None`
    /// (and an inert spec) leaves the simulations untouched.
    pub server_faults: Option<FaultSpec>,
    /// Hardware models cycled across server slots: server `s` runs the
    /// prototype rehosted onto `hw[s % hw.len()]`, so a two-entry list
    /// builds an alternating Skylake-SP / Zen 2 fleet. Empty (the
    /// default) keeps every server on the prototype as-is — including
    /// any catalog overrides a rehost would discard.
    pub hw: Vec<&'static HardwareModel>,
}

impl FleetConfig {
    /// A fleet with the default knobs: 50 ms epochs × 8 epochs,
    /// round-robin routing, no autoscaler, constant load, seed 42,
    /// 500 µs p99 SLO, no faults.
    #[must_use]
    pub fn new(
        servers: usize,
        server: ServerConfig,
        workload: WorkloadSpec,
        total_qps: f64,
    ) -> Self {
        assert!(servers > 0, "fleet must have at least one server");
        assert!(total_qps > 0.0, "offered load must be positive");
        FleetConfig {
            servers,
            server,
            workload,
            total_qps,
            epoch: Nanos::from_millis(50.0),
            epochs: 8,
            policy: RoutingPolicy::RoundRobin,
            autoscale: None,
            load: LoadShape::Constant,
            seed: 42,
            slo_p99: Nanos::from_micros(500.0),
            fleet_faults: None,
            server_faults: None,
            hw: Vec::new(),
        }
    }

    /// Sets the routing policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the fleet autoscaler.
    #[must_use]
    pub fn with_autoscale(mut self, autoscale: AutoscalePolicy) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Sets the load shape.
    #[must_use]
    pub fn with_load(mut self, load: LoadShape) -> Self {
        self.load = load;
        self
    }

    /// Sets the epoch grid.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize, epoch: Nanos) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        assert!(epoch > Nanos::ZERO, "epoch must be positive");
        self.epochs = epochs;
        self.epoch = epoch;
        self
    }

    /// Sets the fleet master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fleet p99 SLO target.
    #[must_use]
    pub fn with_slo(mut self, slo_p99: Nanos) -> Self {
        self.slo_p99 = slo_p99;
        self
    }

    /// Enables fleet-level fault injection under `spec`.
    #[must_use]
    pub fn with_fleet_faults(mut self, spec: FleetFaultSpec) -> Self {
        self.fleet_faults = Some(spec);
        self
    }

    /// Enables per-server fault injection under `spec` for every
    /// simulated server-epoch.
    #[must_use]
    pub fn with_server_faults(mut self, spec: FaultSpec) -> Self {
        self.server_faults = Some(spec);
        self
    }

    /// Cycles the given hardware models across server slots (see the
    /// [`FleetConfig::hw`] field). An empty list keeps the prototype.
    #[must_use]
    pub fn with_hw(mut self, hw: Vec<&'static HardwareModel>) -> Self {
        self.hw = hw;
        self
    }

    /// The concrete configuration for server slot `server`: the
    /// prototype rehosted onto the slot's hardware model, or the
    /// prototype itself when no `hw` list is set.
    #[must_use]
    pub fn server_config(&self, server: usize) -> ServerConfig {
        if self.hw.is_empty() {
            self.server.clone()
        } else {
            self.server.rehosted(self.hw[server % self.hw.len()])
        }
    }

    /// One fully available server's saturation throughput: `cores /
    /// mean service time`. The capacity the balancer and autoscaler
    /// reason against.
    #[must_use]
    pub fn capacity_qps(&self) -> f64 {
        self.server.cores as f64 / self.workload.mean_service().as_secs()
    }

    /// Aggregate load as a fraction of total fleet capacity (at load
    /// factor 1.0).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.total_qps / (self.capacity_qps() * self.servers as f64)
    }
}

/// One epoch's routing, scaling, and fault decisions, fixed before any
/// simulation runs.
#[derive(Debug)]
struct EpochPlan {
    offered: f64,
    availability: Vec<f64>,
    shares: Vec<f64>,
    parks: u64,
    unparks: u64,
    unpark_failures: u64,
    /// `Some(phase)` — the server crashes after serving `phase` of the
    /// epoch.
    crash_phase: Vec<Option<f64>>,
    /// Crashed in an earlier epoch; 0 W, no traffic.
    dark: Vec<bool>,
    /// Up but out of the router's rotation.
    ejected: Vec<bool>,
    /// Extra per-request network latency on degraded links.
    degrade_extra: Vec<Option<Nanos>>,
    /// Remaining capacity fraction on throttled servers.
    throttle: Vec<Option<f64>>,
    degraded_server_epochs: u64,
    throttled_server_epochs: u64,
    /// Requests lost to mid-epoch crashes, re-offered in later epochs.
    retried: u64,
    /// Requests dropped at the balancer (empty rotation).
    shed: u64,
    events: Vec<FleetFaultRecord>,
    crashes: u64,
    rack_outages: u64,
    restarts: u64,
    restart_failures: u64,
    ejections: u64,
    probes: u64,
    readmissions: u64,
}

/// One simulated server-epoch in the flattened sweep grid.
#[derive(Debug, Clone, Copy)]
struct GridPoint {
    epoch: usize,
    server: usize,
    share: f64,
    /// Fraction of the epoch actually served (< 1.0 only when crashing
    /// mid-epoch).
    phase: f64,
    /// Degraded-link latency added to every request.
    extra_rtt: Option<Nanos>,
    /// Capacity throttle factor (service times stretch by its inverse).
    throttle: Option<f64>,
}

/// splitmix64 finalizer — decorrelates the per-(server, epoch) seed
/// streams from the master seed and from each other.
fn mix_seed(master: u64, server: u64, epoch: u64) -> u64 {
    let mut z = master
        .wrapping_add(server.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(epoch.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Achieved-over-oracle savings ratio in `[0, 1]`, defined as 1.0 when
/// nothing was recoverable (no loaded servers, or zero opportunity).
fn recovery(achieved: Joules, oracle: Joules) -> f64 {
    if oracle.as_joules() <= 0.0 {
        1.0
    } else {
        (achieved.as_joules() / oracle.as_joules()).clamp(0.0, 1.0)
    }
}

/// The fleet simulator. Build one from a [`FleetConfig`] and call
/// [`FleetSim::run`].
#[derive(Debug)]
pub struct FleetSim {
    config: FleetConfig,
}

impl FleetSim {
    /// Wraps a fleet configuration.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        FleetSim { config }
    }

    /// Runs the whole fleet and aggregates the report.
    ///
    /// Deterministic for a fixed config: epoch plans are computed
    /// serially up front, the simulated server-epochs fan out on
    /// [`SweepExecutor::current`] with results landing by grid index,
    /// and every server-epoch seeds its own RNG streams — so the report
    /// is byte-identical at any `--jobs`.
    #[must_use]
    pub fn run(self) -> FleetReport {
        self.run_observed(&mut NullFleetObserver)
    }

    /// Computes every epoch's routing/scaling/fault plan serially.
    /// Everything non-deterministic-looking in a chaotic fleet run —
    /// crash timing, ejection, retry splits, unpark failures — is fixed
    /// here, before any simulation runs, from pure `(seed, category,
    /// server, epoch)` draws.
    fn plan_epochs(cfg: &FleetConfig, capacity: f64) -> (Vec<EpochPlan>, u64) {
        let fleet_spec = cfg.fleet_faults.clone().unwrap_or_default();
        let fault_plan = FleetFaultPlan::new(fleet_spec.clone());
        let mut health = HealthTracker::new(cfg.servers, &fleet_spec);
        let mut scaler = Autoscaler::new(cfg.autoscale, cfg.servers);
        let epoch_secs = cfg.epoch.as_secs();
        // Retried traffic carried into later epochs (QPS-equivalent);
        // two slots past the end catch retries that outlive the run.
        let mut carry = vec![0.0f64; cfg.epochs + 2];

        let plans = (0..cfg.epochs)
            .map(|e| {
                let mut step = health.step(e, &fault_plan);
                let offered = cfg.total_qps * cfg.load.factor(e, cfg.epochs) + carry[e];

                // Autoscale over the healthy rotation; failed unparks
                // leave their slot dark for the epoch.
                let rotation = step.in_rotation.clone();
                let mut failed_unparks = Vec::new();
                let d = scaler.decide_faulty(
                    offered,
                    capacity,
                    cfg.epoch,
                    cfg.policy.wants_all_active(),
                    &rotation,
                    |s| {
                        if fault_plan.unpark_fails(s, e) {
                            failed_unparks.push(s);
                            false
                        } else {
                            true
                        }
                    },
                );
                for server in failed_unparks {
                    step.events.push(FleetFaultRecord {
                        epoch: e,
                        server,
                        kind: FleetFaultKind::UnparkFailed,
                    });
                }

                // Route over the in-rotation servers with capacity.
                // Compacting to rotation members before calling the
                // policy keeps `shares` oblivious to ejected/dark
                // servers; for a fault-free fleet the compaction is the
                // identity, so shares are bit-identical to the pre-chaos
                // code path.
                let members: Vec<usize> = (0..cfg.servers)
                    .filter(|&s| step.in_rotation[s] && d.availability[s] > 0.0)
                    .collect();
                let mut shares = vec![0.0; cfg.servers];
                let mut shed_qps = 0.0;
                if members.is_empty() {
                    // Nothing to route to: the whole epoch's offered
                    // load is shed at the balancer.
                    shed_qps = offered;
                } else {
                    let avail: Vec<f64> = members.iter().map(|&s| d.availability[s]).collect();
                    let member_shares = cfg.policy.shares(offered, &avail, capacity);
                    for (&s, share) in members.iter().zip(member_shares) {
                        shares[s] = share;
                    }
                }

                // Traffic on a crashing server past its crash point is
                // retried against survivors with deterministic jittered
                // backoff: a `retry_jitter` fraction next epoch, the
                // rest the epoch after.
                let mut retried_qps = 0.0;
                for (s, &share) in shares.iter().enumerate().take(cfg.servers) {
                    if let Some(phase) = step.crash_phase[s] {
                        let lost = share * (1.0 - phase);
                        if lost > 0.0 {
                            let j = fault_plan.retry_jitter(s, e);
                            carry[e + 1] += lost * j;
                            carry[e + 2] += lost * (1.0 - j);
                            retried_qps += lost;
                        }
                    }
                }

                EpochPlan {
                    offered,
                    availability: d.availability,
                    shares,
                    parks: d.parks,
                    unparks: d.unparks,
                    unpark_failures: d.unpark_failures,
                    crash_phase: step.crash_phase,
                    dark: step.dark,
                    ejected: step.ejected,
                    degrade_extra: step.degrade_extra,
                    throttle: step.throttle,
                    degraded_server_epochs: step.degraded_server_epochs,
                    throttled_server_epochs: step.throttled_server_epochs,
                    retried: (retried_qps * epoch_secs).round() as u64,
                    shed: (shed_qps * epoch_secs).round() as u64,
                    events: step.events,
                    crashes: step.crashes,
                    rack_outages: step.rack_outages,
                    restarts: step.restarts,
                    restart_failures: step.restart_failures,
                    ejections: step.ejections,
                    probes: step.probes,
                    readmissions: step.readmissions,
                }
            })
            .collect();
        // Retries whose backoff landed past the end of the run never
        // find a server: shed, charged to the fleet ledger (they belong
        // to no window).
        let leftover = ((carry[cfg.epochs] + carry[cfg.epochs + 1]) * epoch_secs).round() as u64;
        (plans, leftover)
    }

    /// Runs the fleet while streaming each epoch to `observer` the
    /// moment its server-epoch simulations finish and aggregate.
    ///
    /// Observation is pure: the report is byte-identical to
    /// [`FleetSim::run`] at any worker count. Epochs fan out one at a
    /// time (each epoch's loaded servers still run on every
    /// [`SweepExecutor`] worker), so the observer sees epoch `e` before
    /// epoch `e + 1` starts simulating. Pair with
    /// [`crate::fleet_stream`] to move the events to a consumer thread
    /// with bounded backpressure.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run_observed(self, observer: &mut dyn FleetObserver) -> FleetReport {
        let cfg = self.config;
        let capacity = cfg.capacity_qps();
        let proto_qps = cfg.workload.offered_qps();
        let observe = observer.is_enabled();

        // Phase 1: routing + scaling + fault decisions, serial and
        // closed-form.
        let (plans, leftover_shed) = Self::plan_epochs(&cfg, capacity);

        // Phases 2+3, epoch by epoch: fan one epoch's loaded servers
        // out on the executor, aggregate, stream, move on. Per-point
        // outputs are independent of batching (each server-epoch owns
        // its seed stream), so slicing the old flat grid into per-epoch
        // fan-outs changes when results arrive, never what they are.
        // Server slots may host different hardware models (mixed
        // fleets), so every per-slot quantity — the config a simulation
        // clones, the closed-form idle power, the break-even scoring
        // model — is resolved per slot up front.
        let per_server: Vec<ServerConfig> =
            (0..cfg.servers).map(|s| cfg.server_config(s)).collect();
        // An empty unparked server is closed-form:
        // all cores in the menu's deepest state, uncore in PC6 when the
        // menu includes C6 (else PC2 — all cores idle but not demotable
        // to package sleep). `(has_c6, idle power)` per slot.
        let idle: Vec<(bool, MilliWatts)> = per_server
            .iter()
            .map(|sc| {
                let has_c6 = sc.cstates.is_enabled(CState::C6);
                let core =
                    sc.catalog.power(sc.cstates.deepest().unwrap_or(CState::C0), FreqLevel::P1);
                let uncore =
                    sc.hw.uncore.of(if has_c6 { PackageCState::Pc6 } else { PackageCState::Pc2 });
                (has_c6, core * sc.cores as f64 + uncore)
            })
            .collect();
        let park_power = cfg.autoscale.as_ref().map_or(MilliWatts::ZERO, |p| p.park_power);

        let mut registry = MetricsRegistry::new();
        let mut windows = Vec::with_capacity(cfg.epochs);
        let mut all_samples = SampleSet::new();
        let mut total_energy = Joules::ZERO;
        let mut total_completed = 0u64;
        let mut total_events = 0u64;
        let mut active_epochs = 0usize;
        let mut sim_epochs = 0usize;
        let mut unparked_epochs = 0usize;
        let mut c0_sum = 0.0;
        let mut agile_sum = 0.0;
        let mut pc6_sum = 0.0;
        let mut slo_violations = 0usize;
        let mut degradation = FleetDegradation::default();
        // Idle-opportunity scoring models: each slot's intervals are
        // priced with the catalog and C-state menu its simulations ran
        // with, so a zen2 slot is never audited with skylake costs.
        let breakevens: Vec<BreakEven> = per_server.iter().map(BreakEven::from_server).collect();
        let mut fleet_achieved = Joules::ZERO;
        let mut fleet_oracle = Joules::ZERO;

        for (e, plan) in plans.iter().enumerate() {
            let points: Vec<GridPoint> = plan
                .shares
                .iter()
                .enumerate()
                .filter(|&(_, &share)| share > 0.0)
                .map(|(server, &share)| GridPoint {
                    epoch: e,
                    server,
                    share,
                    phase: plan.crash_phase[server].unwrap_or(1.0),
                    extra_rtt: plan.degrade_extra[server],
                    throttle: plan.throttle[server],
                })
                .collect();
            let outputs: Vec<RunOutput> = SweepExecutor::current().map(&points, |&p| {
                let seed = mix_seed(cfg.seed, p.server as u64, p.epoch as u64);
                let mut workload = cfg.workload.scaled_qps(p.share / proto_qps);
                if let Some(extra) = p.extra_rtt {
                    let rtt = workload.network_rtt() + extra;
                    workload = workload.with_network_rtt(rtt);
                }
                if let Some(factor) = p.throttle {
                    workload = workload.scaled_service(1.0 / factor);
                }
                let server = per_server[p.server].clone().with_duration(cfg.epoch * p.phase);
                let mut builder = SimBuilder::new(server, workload, seed)
                    .with_latency_samples()
                    .with_idle_analysis();
                if let Some(fs) = &cfg.server_faults {
                    let mut spec = fs.clone();
                    spec.seed = mix_seed(fs.seed, p.server as u64, p.epoch as u64);
                    builder = builder.with_faults(FaultPlan::new(spec));
                }
                builder.run()
            });
            total_events += outputs.iter().map(|o| o.metrics.events).sum::<u64>();
            let mut slots: Vec<Option<&RunOutput>> = vec![None; cfg.servers];
            for (p, out) in points.iter().zip(&outputs) {
                slots[p.server] = Some(out);
            }

            let mut power = MilliWatts::ZERO;
            let mut completed = 0u64;
            let mut epoch_achieved = Joules::ZERO;
            let mut epoch_oracle = Joules::ZERO;
            let mut samples = SampleSet::new();
            let (mut active, mut idle_active, mut parked) = (0usize, 0usize, 0usize);
            let (mut crashed, mut ejected) = (0usize, 0usize);
            let mut snapshots: Vec<ServerEpochSnapshot> =
                Vec::with_capacity(if observe { cfg.servers } else { 0 });

            // Pulls the sums/samples out of one simulated server-epoch;
            // shared by the loaded and crashing arms. The slot's own
            // break-even model comes in as an argument — every
            // accumulator comes in by reference so the census arms can
            // keep using them.
            let absorb_sim = |out: &RunOutput,
                              be: &BreakEven,
                              phase: f64,
                              samples: &mut SampleSet,
                              all_samples: &mut SampleSet,
                              completed: &mut u64,
                              epoch_achieved: &mut Joules,
                              epoch_oracle: &mut Joules,
                              c0_sum: &mut f64,
                              agile_sum: &mut f64,
                              pc6_sum: &mut f64,
                              degradation: &mut FleetDegradation| {
                let m = &out.metrics;
                // A mid-epoch crash serves `phase` of the epoch at its
                // simulated power and is dark (0 W) for the rest, so its
                // epoch-average contribution scales by `phase`.
                let pkg = m.package_power() * phase;
                *completed += m.completed;
                *c0_sum += m.residency_of(CState::C0).as_percent() / 100.0;
                *agile_sum += (m.residency_of(CState::C6A).as_percent()
                    + m.residency_of(CState::C6AE).as_percent())
                    / 100.0;
                *pc6_sum += m.package_residency[2].as_percent() / 100.0;
                degradation.absorb_server(&m.degradation);
                let opportunity =
                    OpportunitySummary::compute(out.idle_intervals.as_deref().unwrap_or(&[]), be);
                *epoch_achieved += opportunity.achieved_savings;
                *epoch_oracle += opportunity.oracle_savings;
                if let Some(lat) = &out.latency_samples {
                    samples.reserve(lat.len());
                    all_samples.reserve(lat.len());
                    for &s in lat {
                        samples.record(s);
                        all_samples.record(s);
                    }
                }
                (pkg, opportunity)
            };

            for (server, slot) in slots.iter().enumerate() {
                let avail = plan.availability[server];
                if let Some(phase) = plan.crash_phase[server] {
                    // Crashed mid-epoch: served `phase` of it.
                    crashed += 1;
                    match *slot {
                        Some(out) => {
                            sim_epochs += 1;
                            unparked_epochs += 1;
                            let (pkg, opportunity) = absorb_sim(
                                out,
                                &breakevens[server],
                                phase,
                                &mut samples,
                                &mut all_samples,
                                &mut completed,
                                &mut epoch_achieved,
                                &mut epoch_oracle,
                                &mut c0_sum,
                                &mut agile_sum,
                                &mut pc6_sum,
                                &mut degradation,
                            );
                            power += pkg;
                            if observe {
                                snapshots.push(ServerEpochSnapshot {
                                    server,
                                    role: ServerRole::Crashed,
                                    share_qps: plan.shares[server],
                                    power: pkg,
                                    p99: epoch_p99(out),
                                    c0_share: out.metrics.residency_of(CState::C0).as_percent()
                                        / 100.0,
                                    agile_share: (out
                                        .metrics
                                        .residency_of(CState::C6A)
                                        .as_percent()
                                        + out.metrics.residency_of(CState::C6AE).as_percent())
                                        / 100.0,
                                    counters: epoch_counters(&out.metrics.degradation),
                                    opportunity,
                                });
                            }
                        }
                        None => {
                            // Crashed while carrying no traffic: idle
                            // (or parked) until the crash point, dark
                            // after.
                            let pre = if avail > 0.0 { idle[server].1 } else { park_power };
                            power += pre * phase;
                            if observe {
                                snapshots.push(ServerEpochSnapshot::unsimulated(
                                    server,
                                    ServerRole::Crashed,
                                    pre * phase,
                                ));
                            }
                        }
                    }
                } else if plan.dark[server] {
                    // Dark from an earlier crash: 0 W, no traffic.
                    crashed += 1;
                    if observe {
                        snapshots.push(ServerEpochSnapshot::unsimulated(
                            server,
                            ServerRole::Crashed,
                            MilliWatts::ZERO,
                        ));
                    }
                } else if plan.ejected[server] {
                    // Up but out of rotation: deep package idle while
                    // the router re-probes it.
                    ejected += 1;
                    unparked_epochs += 1;
                    pc6_sum += if idle[server].0 { 1.0 } else { 0.0 };
                    power += idle[server].1;
                    if observe {
                        snapshots.push(ServerEpochSnapshot::unsimulated(
                            server,
                            ServerRole::Ejected,
                            idle[server].1,
                        ));
                    }
                } else {
                    match (avail > 0.0, *slot) {
                        (false, _) => {
                            parked += 1;
                            power += park_power;
                            if observe {
                                snapshots.push(ServerEpochSnapshot::unsimulated(
                                    server,
                                    ServerRole::Parked,
                                    park_power,
                                ));
                            }
                        }
                        (true, None) => {
                            active += 1;
                            idle_active += 1;
                            unparked_epochs += 1;
                            pc6_sum += if idle[server].0 { 1.0 } else { 0.0 };
                            power += idle[server].1;
                            if observe {
                                snapshots.push(ServerEpochSnapshot::unsimulated(
                                    server,
                                    ServerRole::Idle,
                                    idle[server].1,
                                ));
                            }
                        }
                        (true, Some(out)) => {
                            active += 1;
                            unparked_epochs += 1;
                            sim_epochs += 1;
                            let (mut pkg, opportunity) = absorb_sim(
                                out,
                                &breakevens[server],
                                1.0,
                                &mut samples,
                                &mut all_samples,
                                &mut completed,
                                &mut epoch_achieved,
                                &mut epoch_oracle,
                                &mut c0_sum,
                                &mut agile_sum,
                                &mut pc6_sum,
                                &mut degradation,
                            );
                            if avail < 1.0 {
                                // Unparking server: part of the epoch at
                                // park power, plus the boot-energy burst.
                                let p = cfg
                                    .autoscale
                                    .as_ref()
                                    .expect("partial availability implies an autoscaler");
                                pkg = pkg * avail
                                    + p.park_power * (1.0 - avail)
                                    + p.unpark_energy / cfg.epoch;
                            }
                            power += pkg;
                            if observe {
                                let m = &out.metrics;
                                snapshots.push(ServerEpochSnapshot {
                                    server,
                                    role: ServerRole::Loaded,
                                    share_qps: plan.shares[server],
                                    power: pkg,
                                    p99: epoch_p99(out),
                                    c0_share: m.residency_of(CState::C0).as_percent() / 100.0,
                                    agile_share: (m.residency_of(CState::C6A).as_percent()
                                        + m.residency_of(CState::C6AE).as_percent())
                                        / 100.0,
                                    counters: epoch_counters(&m.degradation),
                                    opportunity,
                                });
                            }
                        }
                    }
                }
            }

            let latency = LatencyStats::from_samples(&mut samples);
            let slo_violated = latency.count > 0 && latency.p99 > cfg.slo_p99;
            slo_violations += usize::from(slo_violated);
            total_energy += power * cfg.epoch;
            total_completed += completed;
            active_epochs += active;
            fleet_achieved += epoch_achieved;
            fleet_oracle += epoch_oracle;

            degradation.crashes += plan.crashes;
            degradation.rack_outages += plan.rack_outages;
            degradation.restarts += plan.restarts;
            degradation.restart_failures += plan.restart_failures;
            degradation.ejections += plan.ejections;
            degradation.probes += plan.probes;
            degradation.readmissions += plan.readmissions;
            degradation.unpark_failures += plan.unpark_failures;
            degradation.degraded_server_epochs += plan.degraded_server_epochs;
            degradation.throttled_server_epochs += plan.throttled_server_epochs;
            degradation.retried_requests += plan.retried;
            degradation.shed_requests += plan.shed;

            registry.inc("fleet.epochs", 1);
            registry.inc("fleet.requests_completed", completed);
            registry.inc("fleet.parks", plan.parks);
            registry.inc("fleet.unparks", plan.unparks);
            registry.inc("fleet.server_epochs.loaded", (active - idle_active) as u64);
            registry.inc("fleet.server_epochs.idle", idle_active as u64);
            registry.inc("fleet.server_epochs.parked", parked as u64);
            registry.inc("fleet.server_epochs.crashed", crashed as u64);
            registry.inc("fleet.server_epochs.ejected", ejected as u64);
            registry.inc("fleet.slo_violations", u64::from(slo_violated));
            registry.inc("fleet.crashes", plan.crashes);
            registry.inc("fleet.rack_outages", plan.rack_outages);
            registry.inc("fleet.restarts", plan.restarts);
            registry.inc("fleet.restart_failures", plan.restart_failures);
            registry.inc("fleet.ejections", plan.ejections);
            registry.inc("fleet.probes", plan.probes);
            registry.inc("fleet.readmissions", plan.readmissions);
            registry.inc("fleet.unpark_failures", plan.unpark_failures);
            registry.inc("fleet.requests_retried", plan.retried);
            registry.inc("fleet.requests_shed", plan.shed);

            let window = FleetWindow {
                epoch: e,
                start: cfg.epoch * e as f64,
                offered_qps: plan.offered,
                completed,
                active,
                parked,
                idle_active,
                parks: plan.parks,
                unparks: plan.unparks,
                fleet_power: power,
                latency,
                slo_violated,
                recovery_ratio: recovery(epoch_achieved, epoch_oracle),
                crashed,
                ejected,
                retried: plan.retried,
                shed: plan.shed,
            };
            if observe {
                observer.on_epoch(&FleetEpochEvent {
                    window: window.clone(),
                    servers: snapshots,
                    faults: plan.events.clone(),
                });
            }
            windows.push(window);
        }
        observer.on_finish();

        degradation.shed_requests += leftover_shed;
        registry.inc("fleet.requests_shed", leftover_shed);

        let failure = cfg.fleet_faults.as_ref().filter(|s| s.is_active()).map(|spec| {
            FleetFailureArtifact::new(
                cfg.seed,
                spec,
                plans.iter().flat_map(|p| p.events.iter().copied()).collect(),
            )
        });

        let run_span = cfg.epoch * cfg.epochs as f64;
        FleetReport {
            policy: cfg.policy,
            servers: cfg.servers,
            cores_per_server: cfg.server.cores,
            config: cfg.server.named.to_string(),
            // Recorded only when some server actually runs on different
            // silicon than the prototype: `--hw skylake-sp` is then the
            // explicit spelling of the default and reports stay
            // byte-identical to a bare run.
            hw: if cfg.hw.iter().all(|h| std::ptr::eq(*h, cfg.server.hw)) {
                Vec::new()
            } else {
                cfg.hw.iter().map(|h| h.name.to_string()).collect()
            },
            epoch: cfg.epoch,
            latency: LatencyStats::from_samples(&mut all_samples),
            avg_fleet_power: total_energy / run_span,
            energy: total_energy,
            completed: total_completed,
            events: total_events,
            energy_per_request: if total_completed == 0 {
                Joules::ZERO
            } else {
                total_energy / total_completed as f64
            },
            avg_active: active_epochs as f64 / cfg.epochs as f64,
            c0_residency: Ratio::new(c0_sum / sim_epochs.max(1) as f64),
            agile_residency: Ratio::new(agile_sum / sim_epochs.max(1) as f64),
            pc6_fraction: Ratio::new(pc6_sum / unparked_epochs.max(1) as f64),
            opportunity_recovery: Ratio::new(recovery(fleet_achieved, fleet_oracle)),
            slo_p99: cfg.slo_p99,
            slo_violations,
            counters: registry.counters().map(|(k, v)| (k.to_string(), v)).collect(),
            degradation,
            failure,
            windows,
        }
    }
}

/// This server-epoch's own p99 — exact nearest-rank by selection (O(n),
/// not a full sort). The rank formula matches `SampleSet::percentile`.
fn epoch_p99(out: &RunOutput) -> Option<Nanos> {
    out.latency_samples.as_ref().and_then(|lat| {
        let mut own = lat.clone();
        let rank = ((0.99 * own.len() as f64).ceil() as usize).clamp(1, own.len());
        (!own.is_empty()).then(|| {
            let (_, &mut p, _) = own.select_nth_unstable_by(rank - 1, f64::total_cmp);
            Nanos::new(p)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_cstates::NamedConfig;

    fn fleet(servers: usize, named: NamedConfig, total_qps: f64) -> FleetConfig {
        // Short epochs keep the grid cheap: 4 × 20 ms per server-epoch.
        let workload = WorkloadSpec::poisson("synthetic", 1_000.0, Nanos::from_micros(250.0), 0.6);
        FleetConfig::new(servers, ServerConfig::new(4, named), workload, total_qps)
            .with_epochs(4, Nanos::from_millis(20.0))
    }

    #[test]
    fn seed_mixing_decorrelates_neighbours() {
        let a = mix_seed(42, 0, 0);
        let b = mix_seed(42, 1, 0);
        let c = mix_seed(42, 0, 1);
        let d = mix_seed(43, 0, 0);
        assert!(a != b && a != c && a != d && b != c, "stream collision");
    }

    #[test]
    fn report_shape_and_conservation() {
        // 4 servers × 16 kQPS capacity each; 20% aggregate load.
        let report = FleetSim::new(fleet(4, NamedConfig::NtAw, 12_800.0)).run();
        assert_eq!(report.windows.len(), 4);
        assert_eq!(report.servers, 4);
        assert!(report.completed > 0, "fleet completed no requests");
        assert_eq!(report.completed, report.windows.iter().map(|w| w.completed).sum::<u64>());
        assert_eq!(report.counters["fleet.requests_completed"], report.completed);
        assert!(report.avg_fleet_power > MilliWatts::ZERO);
        assert!(!report.latency.is_empty());
        assert!(report.degradation.is_clean(), "fault-free run dirtied the ledger");
        assert!(report.failure.is_none());
    }

    #[test]
    fn packing_consumes_less_than_round_robin_at_low_load() {
        // 25% aggregate load: packing parks ~2/3 of the uncore budget in
        // PC6 while round robin keeps every package at PC0.
        let packed = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0).with_policy(RoutingPolicy::Packing),
        )
        .run();
        let spread = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0).with_policy(RoutingPolicy::RoundRobin),
        )
        .run();
        assert!(
            packed.avg_fleet_power < spread.avg_fleet_power,
            "packing {} should beat round robin {}",
            packed.avg_fleet_power,
            spread.avg_fleet_power
        );
        assert!(packed.pc6_fraction.as_percent() > 0.0, "packing never reached PC6");
    }

    #[test]
    fn autoscaler_parks_servers_in_the_trough() {
        let report = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0)
                .with_load(LoadShape::Diurnal { amplitude: 0.8 })
                .with_autoscale(AutoscalePolicy::default()),
        )
        .run();
        let parked_epochs: u64 = report.counters["fleet.server_epochs.parked"];
        assert!(parked_epochs > 0, "diurnal trough never parked a server");
        assert!(report.counters["fleet.parks"] > 0);
        assert!(report.avg_active < 4.0);
    }

    #[test]
    fn spreading_keeps_the_whole_fleet_awake() {
        let report = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0)
                .with_policy(RoutingPolicy::Spreading)
                .with_autoscale(AutoscalePolicy::default()),
        )
        .run();
        assert_eq!(report.counters["fleet.server_epochs.parked"], 0);
        assert!((report.avg_active - 4.0).abs() < 1e-9);
    }

    #[test]
    fn streamed_epochs_rebuild_the_fleet_timeline_byte_for_byte() {
        struct Collector {
            events: Vec<FleetEpochEvent>,
            finished: bool,
        }
        impl FleetObserver for Collector {
            fn on_epoch(&mut self, event: &FleetEpochEvent) {
                assert!(!self.finished, "epoch delivered after finish");
                assert_eq!(event.window.epoch, self.events.len(), "epochs out of order");
                self.events.push(event.clone());
            }
            fn on_finish(&mut self) {
                self.finished = true;
            }
        }

        let config = fleet(3, NamedConfig::NtAw, 9_600.0)
            .with_policy(RoutingPolicy::Packing)
            .with_autoscale(AutoscalePolicy::default())
            .with_load(LoadShape::Diurnal { amplitude: 0.8 });
        let batch = FleetSim::new(config.clone()).run();

        let mut collector = Collector { events: Vec::new(), finished: false };
        let streamed = FleetSim::new(config.clone()).run_observed(&mut collector);
        assert!(collector.finished, "observer never finished");
        assert_eq!(
            format!("{batch:?}"),
            format!("{streamed:?}"),
            "observation must not perturb the report"
        );

        let mut csv = String::from(FleetWindow::CSV_HEADER);
        for event in &collector.events {
            assert_eq!(event.servers.len(), config.servers, "snapshot per server");
            assert!(event.faults.is_empty(), "fault-free run produced fault events");
            csv.push_str(&event.window.csv_row());
        }
        assert_eq!(csv, batch.timeline_csv(), "streamed fleet CSV diverged from batch");

        // Roles must mirror the window's census, and loaded servers
        // carry residency + their own p99.
        for event in &collector.events {
            let loaded = event.servers.iter().filter(|s| s.role == ServerRole::Loaded).count();
            let parked = event.servers.iter().filter(|s| s.role == ServerRole::Parked).count();
            assert_eq!(loaded, event.window.active - event.window.idle_active);
            assert_eq!(parked, event.window.parked);
            for s in &event.servers {
                if s.role == ServerRole::Loaded {
                    assert!(s.share_qps > 0.0);
                } else {
                    assert!(s.p99.is_none() && s.share_qps <= 0.0);
                }
            }
        }
    }

    #[test]
    fn mixed_hw_fleet_is_reproducible_and_reports_models() {
        let hw = vec![HardwareModel::skylake_sp(), HardwareModel::zen2()];
        let cfg = fleet(4, NamedConfig::NtAw, 12_800.0).with_hw(hw);
        let a = FleetSim::new(cfg.clone()).run();
        let b = FleetSim::new(cfg).run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "mixed fleet is not reproducible");
        assert_eq!(a.hw, vec!["skylake-sp".to_string(), "zen2".to_string()]);
        assert!(a.completed > 0);
    }

    #[test]
    fn single_skylake_hw_entry_matches_the_prototype_fleet() {
        // Rehosting the (skylake-default) prototype onto skylake-sp is
        // the identity for everything the simulations consume.
        let bare = FleetSim::new(fleet(2, NamedConfig::NtAw, 8_000.0)).run();
        let hosted = FleetSim::new(
            fleet(2, NamedConfig::NtAw, 8_000.0).with_hw(vec![HardwareModel::skylake_sp()]),
        )
        .run();
        assert_eq!(bare.timeline_csv(), hosted.timeline_csv());
        assert_eq!(bare.avg_fleet_power, hosted.avg_fleet_power);
        assert_eq!(bare.energy, hosted.energy);
    }

    #[test]
    fn identical_configs_produce_identical_reports() {
        let a = FleetSim::new(fleet(2, NamedConfig::NtBaseline, 8_000.0)).run();
        let b = FleetSim::new(fleet(2, NamedConfig::NtBaseline, 8_000.0)).run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "fleet run is not reproducible");
    }

    #[test]
    fn inert_fault_hooks_are_invisible() {
        // The fleet-level CRN contract: a linked-but-inactive fault
        // plan (fleet- or server-level) must be byte-identical to no
        // fault hook at all.
        let bare = FleetSim::new(fleet(2, NamedConfig::NtAw, 8_000.0)).run();
        let inert_fleet = FleetSim::new(
            fleet(2, NamedConfig::NtAw, 8_000.0).with_fleet_faults(FleetFaultSpec::none()),
        )
        .run();
        let inert_server = FleetSim::new(
            fleet(2, NamedConfig::NtAw, 8_000.0).with_server_faults(FaultSpec::none()),
        )
        .run();
        assert_eq!(format!("{bare:?}"), format!("{inert_fleet:?}"), "inert fleet plan perturbed");
        assert_eq!(format!("{bare:?}"), format!("{inert_server:?}"), "inert server plan perturbed");
    }

    #[test]
    fn scheduled_crash_ejects_recovers_and_fills_the_ledger() {
        let spec = FleetFaultSpec::parse("crash-at=1:0,down-epochs=1").unwrap();
        let config = fleet(3, NamedConfig::NtAw, 9_600.0)
            .with_epochs(6, Nanos::from_millis(20.0))
            .with_fleet_faults(spec);
        let report = FleetSim::new(config).run();

        assert_eq!(report.degradation.crashes, 1);
        assert_eq!(report.degradation.ejections, 1);
        assert_eq!(report.degradation.restarts, 1);
        assert_eq!(report.degradation.readmissions, 1);
        assert!(report.degradation.retried_requests > 0, "lost crash traffic never retried");
        assert_eq!(report.counters["fleet.crashes"], 1);

        // Window census: crash epoch 1 shows the casualty; dark epoch 2
        // keeps it crashed; by the final epoch everyone is back.
        assert_eq!(report.windows[1].crashed, 1);
        assert_eq!(report.windows[2].crashed, 1);
        assert_eq!(report.windows[5].crashed, 0);
        assert_eq!(report.windows[5].active, 3, "fleet never fully recovered");

        // The artifact replays: same seed + parsed spec => same report.
        let artifact = report.failure.as_ref().expect("active faults produce an artifact");
        let kinds: Vec<FleetFaultKind> = artifact.events.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&FleetFaultKind::Crash));
        assert!(kinds.contains(&FleetFaultKind::Eject));
        assert!(kinds.contains(&FleetFaultKind::Restart));
        assert!(kinds.contains(&FleetFaultKind::Readmit));
        let respec = FleetFaultSpec::parse(&artifact.fleet_spec).unwrap();
        let replay = FleetSim::new(
            fleet(3, NamedConfig::NtAw, 9_600.0)
                .with_epochs(6, Nanos::from_millis(20.0))
                .with_seed(artifact.seed)
                .with_fleet_faults(respec),
        )
        .run();
        assert_eq!(format!("{report:?}"), format!("{replay:?}"), "artifact replay diverged");
    }

    #[test]
    fn empty_rotation_sheds_instead_of_panicking() {
        // Every server crashes at epoch 0 and stays down past the end:
        // epochs 1+ have nobody to route to.
        let spec = FleetFaultSpec::parse("crash-at=0:0,crash-at=0:1,down-epochs=8").unwrap();
        let report =
            FleetSim::new(fleet(2, NamedConfig::NtAw, 8_000.0).with_fleet_faults(spec)).run();
        assert!(report.degradation.shed_requests > 0, "dead fleet shed nothing");
        assert_eq!(report.windows[1].active, 0);
        assert_eq!(report.windows[1].crashed, 2);
        assert!(report.windows[1].shed > 0);
    }
}
