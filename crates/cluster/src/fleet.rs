//! The fleet simulator: N servers behind a front-end load balancer,
//! stepped epoch by epoch.
//!
//! Each epoch the balancer computes one load share per server (see
//! [`RoutingPolicy`]) after the autoscaler has decided which servers are
//! even awake (see [`crate::AutoscalePolicy`]); every server with a
//! non-zero share then runs a full single-server discrete-event
//! simulation at that share. Server-epochs are mutually independent by
//! construction — each derives all randomness from its own
//! `(fleet seed, server, epoch)` stream — so the whole grid fans out on
//! [`SweepExecutor`] and the fleet report is byte-identical at any
//! worker count.
//!
//! Servers with *zero* share are not simulated: an empty server's
//! steady state is closed-form (every core in the menu's deepest state,
//! uncore in PC6 when the menu allows it), and modeling it analytically
//! keeps a 64-server fleet at 30% load as cheap as the ~20 servers that
//! actually carry traffic.

use std::f64::consts::TAU;

use aw_cstates::{CState, FreqLevel};
use aw_exec::SweepExecutor;
use aw_server::{
    LatencyStats, PackageCState, RunOutput, ServerConfig, SimBuilder, UncorePower, WorkloadSpec,
};
use aw_sim::SampleSet;
use aw_sleep::{BreakEven, OpportunitySummary};
use aw_telemetry::MetricsRegistry;
use aw_types::{Joules, MilliWatts, Nanos, Ratio};

use crate::autoscaler::{AutoscalePolicy, Autoscaler};
use crate::policy::RoutingPolicy;
use crate::report::{FleetReport, FleetWindow};
use crate::stream::{
    epoch_counters, FleetEpochEvent, FleetObserver, NullFleetObserver, ServerEpochSnapshot,
    ServerRole,
};

/// How the fleet's aggregate offered load evolves over the run.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub enum LoadShape {
    /// Flat at `total_qps` for every epoch.
    Constant,
    /// One sine period over the whole run:
    /// `total_qps × (1 + amplitude · sin(2π · epoch / epochs))` — the
    /// scaled-down diurnal swing the autoscaler exists to track.
    Diurnal {
        /// Peak-to-mean swing, in `[0, 1)`.
        amplitude: f64,
    },
}

impl LoadShape {
    /// The load multiplier for `epoch` of `epochs`.
    #[must_use]
    pub fn factor(self, epoch: usize, epochs: usize) -> f64 {
        match self {
            LoadShape::Constant => 1.0,
            LoadShape::Diurnal { amplitude } => {
                let phase = TAU * epoch as f64 / epochs.max(1) as f64;
                // Floor keeps `scaled_qps` strictly positive even at
                // amplitude 1.0 troughs.
                (1.0 + amplitude * phase.sin()).max(0.01)
            }
        }
    }
}

/// A full fleet experiment: the server prototype, the workload
/// prototype, and the fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of servers behind the balancer.
    pub servers: usize,
    /// Per-server configuration prototype (cores, C-state menu, catalog,
    /// …). Its `duration`/`warmup` are overridden per epoch.
    pub server: ServerConfig,
    /// Per-server workload prototype; each server-epoch runs this
    /// workload rescaled to its routed share.
    pub workload: WorkloadSpec,
    /// Aggregate offered load at load factor 1.0 (requests/s).
    pub total_qps: f64,
    /// Epoch duration — the balancer's and autoscaler's decision period.
    pub epoch: Nanos,
    /// Number of epochs to run.
    pub epochs: usize,
    /// How the balancer splits load across servers.
    pub policy: RoutingPolicy,
    /// Fleet autoscaler; `None` keeps every server unparked.
    pub autoscale: Option<AutoscalePolicy>,
    /// Load evolution over the run.
    pub load: LoadShape,
    /// Fleet master seed; per-(server, epoch) streams are mixed from it.
    pub seed: u64,
    /// Fleet p99 SLO target each epoch window is judged against.
    pub slo_p99: Nanos,
}

impl FleetConfig {
    /// A fleet with the default knobs: 50 ms epochs × 8 epochs,
    /// round-robin routing, no autoscaler, constant load, seed 42,
    /// 500 µs p99 SLO.
    #[must_use]
    pub fn new(
        servers: usize,
        server: ServerConfig,
        workload: WorkloadSpec,
        total_qps: f64,
    ) -> Self {
        assert!(servers > 0, "fleet must have at least one server");
        assert!(total_qps > 0.0, "offered load must be positive");
        FleetConfig {
            servers,
            server,
            workload,
            total_qps,
            epoch: Nanos::from_millis(50.0),
            epochs: 8,
            policy: RoutingPolicy::RoundRobin,
            autoscale: None,
            load: LoadShape::Constant,
            seed: 42,
            slo_p99: Nanos::from_micros(500.0),
        }
    }

    /// Sets the routing policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the fleet autoscaler.
    #[must_use]
    pub fn with_autoscale(mut self, autoscale: AutoscalePolicy) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Sets the load shape.
    #[must_use]
    pub fn with_load(mut self, load: LoadShape) -> Self {
        self.load = load;
        self
    }

    /// Sets the epoch grid.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize, epoch: Nanos) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        assert!(epoch > Nanos::ZERO, "epoch must be positive");
        self.epochs = epochs;
        self.epoch = epoch;
        self
    }

    /// Sets the fleet master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fleet p99 SLO target.
    #[must_use]
    pub fn with_slo(mut self, slo_p99: Nanos) -> Self {
        self.slo_p99 = slo_p99;
        self
    }

    /// One fully available server's saturation throughput: `cores /
    /// mean service time`. The capacity the balancer and autoscaler
    /// reason against.
    #[must_use]
    pub fn capacity_qps(&self) -> f64 {
        self.server.cores as f64 / self.workload.mean_service().as_secs()
    }

    /// Aggregate load as a fraction of total fleet capacity (at load
    /// factor 1.0).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.total_qps / (self.capacity_qps() * self.servers as f64)
    }
}

/// One epoch's routing decision, fixed before any simulation runs.
#[derive(Debug)]
struct EpochPlan {
    offered: f64,
    availability: Vec<f64>,
    shares: Vec<f64>,
    parks: u64,
    unparks: u64,
}

/// One simulated server-epoch in the flattened sweep grid.
#[derive(Debug, Clone, Copy)]
struct GridPoint {
    epoch: usize,
    server: usize,
    share: f64,
}

/// splitmix64 finalizer — decorrelates the per-(server, epoch) seed
/// streams from the master seed and from each other.
fn mix_seed(master: u64, server: u64, epoch: u64) -> u64 {
    let mut z = master
        .wrapping_add(server.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(epoch.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Achieved-over-oracle savings ratio in `[0, 1]`, defined as 1.0 when
/// nothing was recoverable (no loaded servers, or zero opportunity).
fn recovery(achieved: Joules, oracle: Joules) -> f64 {
    if oracle.as_joules() <= 0.0 {
        1.0
    } else {
        (achieved.as_joules() / oracle.as_joules()).clamp(0.0, 1.0)
    }
}

/// The fleet simulator. Build one from a [`FleetConfig`] and call
/// [`FleetSim::run`].
#[derive(Debug)]
pub struct FleetSim {
    config: FleetConfig,
}

impl FleetSim {
    /// Wraps a fleet configuration.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        FleetSim { config }
    }

    /// Runs the whole fleet and aggregates the report.
    ///
    /// Deterministic for a fixed config: epoch plans are computed
    /// serially up front, the simulated server-epochs fan out on
    /// [`SweepExecutor::current`] with results landing by grid index,
    /// and every server-epoch seeds its own RNG streams — so the report
    /// is byte-identical at any `--jobs`.
    #[must_use]
    pub fn run(self) -> FleetReport {
        self.run_observed(&mut NullFleetObserver)
    }

    /// Runs the fleet while streaming each epoch to `observer` the
    /// moment its server-epoch simulations finish and aggregate.
    ///
    /// Observation is pure: the report is byte-identical to
    /// [`FleetSim::run`] at any worker count. Epochs fan out one at a
    /// time (each epoch's loaded servers still run on every
    /// [`SweepExecutor`] worker), so the observer sees epoch `e` before
    /// epoch `e + 1` starts simulating. Pair with
    /// [`crate::fleet_stream`] to move the events to a consumer thread
    /// with bounded backpressure.
    #[must_use]
    pub fn run_observed(self, observer: &mut dyn FleetObserver) -> FleetReport {
        let cfg = self.config;
        let capacity = cfg.capacity_qps();
        let proto_qps = cfg.workload.offered_qps();
        let observe = observer.is_enabled();

        // Phase 1: routing + scaling decisions, serial and closed-form.
        let mut scaler = Autoscaler::new(cfg.autoscale, cfg.servers);
        let plans: Vec<EpochPlan> = (0..cfg.epochs)
            .map(|e| {
                let offered = cfg.total_qps * cfg.load.factor(e, cfg.epochs);
                let d = scaler.decide(offered, capacity, cfg.epoch, cfg.policy.wants_all_active());
                let shares = cfg.policy.shares(offered, &d.availability, capacity);
                EpochPlan {
                    offered,
                    availability: d.availability,
                    shares,
                    parks: d.parks,
                    unparks: d.unparks,
                }
            })
            .collect();

        // Phases 2+3, epoch by epoch: fan one epoch's loaded servers
        // out on the executor, aggregate, stream, move on. Per-point
        // outputs are independent of batching (each server-epoch owns
        // its seed stream), so slicing the old flat grid into per-epoch
        // fan-outs changes when results arrive, never what they are.
        // An empty unparked server is closed-form:
        // all cores in the menu's deepest state, uncore in PC6 when the
        // menu includes C6 (else PC2 — all cores idle but not demotable
        // to package sleep).
        let has_c6 = cfg.server.cstates.is_enabled(CState::C6);
        let idle_core = cfg
            .server
            .catalog
            .power(cfg.server.cstates.deepest().unwrap_or(CState::C0), FreqLevel::P1);
        let idle_uncore =
            UncorePower::skylake().of(if has_c6 { PackageCState::Pc6 } else { PackageCState::Pc2 });
        let idle_power = idle_core * cfg.server.cores as f64 + idle_uncore;

        let mut registry = MetricsRegistry::new();
        let mut windows = Vec::with_capacity(cfg.epochs);
        let mut all_samples = SampleSet::new();
        let mut total_energy = Joules::ZERO;
        let mut total_completed = 0u64;
        let mut active_epochs = 0usize;
        let mut sim_epochs = 0usize;
        let mut unparked_epochs = 0usize;
        let mut c0_sum = 0.0;
        let mut agile_sum = 0.0;
        let mut pc6_sum = 0.0;
        let mut slo_violations = 0usize;
        // Idle-opportunity scoring model: same catalog and C-state menu
        // every server-epoch simulation runs with.
        let breakeven = BreakEven::from_server(&cfg.server);
        let mut fleet_achieved = Joules::ZERO;
        let mut fleet_oracle = Joules::ZERO;

        for (e, plan) in plans.iter().enumerate() {
            let points: Vec<GridPoint> = plan
                .shares
                .iter()
                .enumerate()
                .filter(|&(_, &share)| share > 0.0)
                .map(|(server, &share)| GridPoint { epoch: e, server, share })
                .collect();
            let outputs: Vec<RunOutput> = SweepExecutor::current().map(&points, |&p| {
                let seed = mix_seed(cfg.seed, p.server as u64, p.epoch as u64);
                let workload = cfg.workload.scaled_qps(p.share / proto_qps);
                let server = cfg.server.clone().with_duration(cfg.epoch);
                SimBuilder::new(server, workload, seed)
                    .with_latency_samples()
                    .with_idle_analysis()
                    .run()
            });
            let mut slots: Vec<Option<&RunOutput>> = vec![None; cfg.servers];
            for (p, out) in points.iter().zip(&outputs) {
                slots[p.server] = Some(out);
            }

            let mut power = MilliWatts::ZERO;
            let mut completed = 0u64;
            let mut epoch_achieved = Joules::ZERO;
            let mut epoch_oracle = Joules::ZERO;
            let mut samples = SampleSet::new();
            let (mut active, mut idle_active, mut parked) = (0usize, 0usize, 0usize);
            let mut snapshots: Vec<ServerEpochSnapshot> =
                Vec::with_capacity(if observe { cfg.servers } else { 0 });

            for (server, slot) in slots.iter().enumerate() {
                let avail = plan.availability[server];
                match (avail > 0.0, *slot) {
                    (false, _) => {
                        parked += 1;
                        let park =
                            cfg.autoscale.as_ref().map_or(MilliWatts::ZERO, |p| p.park_power);
                        power += park;
                        if observe {
                            snapshots.push(ServerEpochSnapshot::unsimulated(
                                server,
                                ServerRole::Parked,
                                park,
                            ));
                        }
                    }
                    (true, None) => {
                        active += 1;
                        idle_active += 1;
                        unparked_epochs += 1;
                        pc6_sum += if has_c6 { 1.0 } else { 0.0 };
                        power += idle_power;
                        if observe {
                            snapshots.push(ServerEpochSnapshot::unsimulated(
                                server,
                                ServerRole::Idle,
                                idle_power,
                            ));
                        }
                    }
                    (true, Some(out)) => {
                        active += 1;
                        unparked_epochs += 1;
                        sim_epochs += 1;
                        let m = &out.metrics;
                        let mut pkg = m.package_power();
                        if avail < 1.0 {
                            // Unparking server: part of the epoch at
                            // park power, plus the boot-energy burst.
                            let p = cfg
                                .autoscale
                                .as_ref()
                                .expect("partial availability implies an autoscaler");
                            pkg = pkg * avail
                                + p.park_power * (1.0 - avail)
                                + p.unpark_energy / cfg.epoch;
                        }
                        power += pkg;
                        completed += m.completed;
                        let c0 = m.residency_of(CState::C0).as_percent() / 100.0;
                        let agile = (m.residency_of(CState::C6A).as_percent()
                            + m.residency_of(CState::C6AE).as_percent())
                            / 100.0;
                        c0_sum += c0;
                        agile_sum += agile;
                        pc6_sum += m.package_residency[2].as_percent() / 100.0;
                        let opportunity = OpportunitySummary::compute(
                            out.idle_intervals.as_deref().unwrap_or(&[]),
                            &breakeven,
                        );
                        epoch_achieved += opportunity.achieved_savings;
                        epoch_oracle += opportunity.oracle_savings;
                        if let Some(lat) = &out.latency_samples {
                            samples.reserve(lat.len());
                            all_samples.reserve(lat.len());
                            for &s in lat {
                                samples.record(s);
                                all_samples.record(s);
                            }
                        }
                        if observe {
                            // Nearest-rank p99 by selection (O(n), not a
                            // full sort): this runs once per loaded
                            // server-epoch, and the streaming path is
                            // budgeted at <2% over batch. The rank
                            // formula matches `SampleSet::percentile`.
                            let p99 = out.latency_samples.as_ref().and_then(|lat| {
                                let mut own = lat.clone();
                                let rank =
                                    ((0.99 * own.len() as f64).ceil() as usize).clamp(1, own.len());
                                (!own.is_empty()).then(|| {
                                    let (_, &mut p, _) =
                                        own.select_nth_unstable_by(rank - 1, f64::total_cmp);
                                    Nanos::new(p)
                                })
                            });
                            snapshots.push(ServerEpochSnapshot {
                                server,
                                role: ServerRole::Loaded,
                                share_qps: plan.shares[server],
                                power: pkg,
                                p99,
                                c0_share: c0,
                                agile_share: agile,
                                counters: epoch_counters(&m.degradation),
                                opportunity,
                            });
                        }
                    }
                }
            }

            let latency = LatencyStats::from_samples(&mut samples);
            let slo_violated = latency.count > 0 && latency.p99 > cfg.slo_p99;
            slo_violations += usize::from(slo_violated);
            total_energy += power * cfg.epoch;
            total_completed += completed;
            active_epochs += active;
            fleet_achieved += epoch_achieved;
            fleet_oracle += epoch_oracle;

            registry.inc("fleet.epochs", 1);
            registry.inc("fleet.requests_completed", completed);
            registry.inc("fleet.parks", plan.parks);
            registry.inc("fleet.unparks", plan.unparks);
            registry.inc("fleet.server_epochs.loaded", (active - idle_active) as u64);
            registry.inc("fleet.server_epochs.idle", idle_active as u64);
            registry.inc("fleet.server_epochs.parked", parked as u64);
            registry.inc("fleet.slo_violations", u64::from(slo_violated));

            let window = FleetWindow {
                epoch: e,
                start: cfg.epoch * e as f64,
                offered_qps: plan.offered,
                completed,
                active,
                parked,
                idle_active,
                parks: plan.parks,
                unparks: plan.unparks,
                fleet_power: power,
                latency,
                slo_violated,
                recovery_ratio: recovery(epoch_achieved, epoch_oracle),
            };
            if observe {
                observer.on_epoch(&FleetEpochEvent { window: window.clone(), servers: snapshots });
            }
            windows.push(window);
        }
        observer.on_finish();

        let run_span = cfg.epoch * cfg.epochs as f64;
        FleetReport {
            policy: cfg.policy,
            servers: cfg.servers,
            cores_per_server: cfg.server.cores,
            config: cfg.server.named.to_string(),
            epoch: cfg.epoch,
            latency: LatencyStats::from_samples(&mut all_samples),
            avg_fleet_power: total_energy / run_span,
            energy: total_energy,
            completed: total_completed,
            energy_per_request: if total_completed == 0 {
                Joules::ZERO
            } else {
                total_energy / total_completed as f64
            },
            avg_active: active_epochs as f64 / cfg.epochs as f64,
            c0_residency: Ratio::new(c0_sum / sim_epochs.max(1) as f64),
            agile_residency: Ratio::new(agile_sum / sim_epochs.max(1) as f64),
            pc6_fraction: Ratio::new(pc6_sum / unparked_epochs.max(1) as f64),
            opportunity_recovery: Ratio::new(recovery(fleet_achieved, fleet_oracle)),
            slo_p99: cfg.slo_p99,
            slo_violations,
            counters: registry.counters().map(|(k, v)| (k.to_string(), v)).collect(),
            windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_cstates::NamedConfig;

    fn fleet(servers: usize, named: NamedConfig, total_qps: f64) -> FleetConfig {
        // Short epochs keep the grid cheap: 4 × 20 ms per server-epoch.
        let workload = WorkloadSpec::poisson("synthetic", 1_000.0, Nanos::from_micros(250.0), 0.6);
        FleetConfig::new(servers, ServerConfig::new(4, named), workload, total_qps)
            .with_epochs(4, Nanos::from_millis(20.0))
    }

    #[test]
    fn seed_mixing_decorrelates_neighbours() {
        let a = mix_seed(42, 0, 0);
        let b = mix_seed(42, 1, 0);
        let c = mix_seed(42, 0, 1);
        let d = mix_seed(43, 0, 0);
        assert!(a != b && a != c && a != d && b != c, "stream collision");
    }

    #[test]
    fn report_shape_and_conservation() {
        // 4 servers × 16 kQPS capacity each; 20% aggregate load.
        let report = FleetSim::new(fleet(4, NamedConfig::NtAw, 12_800.0)).run();
        assert_eq!(report.windows.len(), 4);
        assert_eq!(report.servers, 4);
        assert!(report.completed > 0, "fleet completed no requests");
        assert_eq!(report.completed, report.windows.iter().map(|w| w.completed).sum::<u64>());
        assert_eq!(report.counters["fleet.requests_completed"], report.completed);
        assert!(report.avg_fleet_power > MilliWatts::ZERO);
        assert!(!report.latency.is_empty());
    }

    #[test]
    fn packing_consumes_less_than_round_robin_at_low_load() {
        // 25% aggregate load: packing parks ~2/3 of the uncore budget in
        // PC6 while round robin keeps every package at PC0.
        let packed = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0).with_policy(RoutingPolicy::Packing),
        )
        .run();
        let spread = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0).with_policy(RoutingPolicy::RoundRobin),
        )
        .run();
        assert!(
            packed.avg_fleet_power < spread.avg_fleet_power,
            "packing {} should beat round robin {}",
            packed.avg_fleet_power,
            spread.avg_fleet_power
        );
        assert!(packed.pc6_fraction.as_percent() > 0.0, "packing never reached PC6");
    }

    #[test]
    fn autoscaler_parks_servers_in_the_trough() {
        let report = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0)
                .with_load(LoadShape::Diurnal { amplitude: 0.8 })
                .with_autoscale(AutoscalePolicy::default()),
        )
        .run();
        let parked_epochs: u64 = report.counters["fleet.server_epochs.parked"];
        assert!(parked_epochs > 0, "diurnal trough never parked a server");
        assert!(report.counters["fleet.parks"] > 0);
        assert!(report.avg_active < 4.0);
    }

    #[test]
    fn spreading_keeps_the_whole_fleet_awake() {
        let report = FleetSim::new(
            fleet(4, NamedConfig::NtAw, 16_000.0)
                .with_policy(RoutingPolicy::Spreading)
                .with_autoscale(AutoscalePolicy::default()),
        )
        .run();
        assert_eq!(report.counters["fleet.server_epochs.parked"], 0);
        assert!((report.avg_active - 4.0).abs() < 1e-9);
    }

    #[test]
    fn streamed_epochs_rebuild_the_fleet_timeline_byte_for_byte() {
        struct Collector {
            events: Vec<FleetEpochEvent>,
            finished: bool,
        }
        impl FleetObserver for Collector {
            fn on_epoch(&mut self, event: &FleetEpochEvent) {
                assert!(!self.finished, "epoch delivered after finish");
                assert_eq!(event.window.epoch, self.events.len(), "epochs out of order");
                self.events.push(event.clone());
            }
            fn on_finish(&mut self) {
                self.finished = true;
            }
        }

        let config = fleet(3, NamedConfig::NtAw, 9_600.0)
            .with_policy(RoutingPolicy::Packing)
            .with_autoscale(AutoscalePolicy::default())
            .with_load(LoadShape::Diurnal { amplitude: 0.8 });
        let batch = FleetSim::new(config.clone()).run();

        let mut collector = Collector { events: Vec::new(), finished: false };
        let streamed = FleetSim::new(config.clone()).run_observed(&mut collector);
        assert!(collector.finished, "observer never finished");
        assert_eq!(
            format!("{batch:?}"),
            format!("{streamed:?}"),
            "observation must not perturb the report"
        );

        let mut csv = String::from(FleetWindow::CSV_HEADER);
        for event in &collector.events {
            assert_eq!(event.servers.len(), config.servers, "snapshot per server");
            csv.push_str(&event.window.csv_row());
        }
        assert_eq!(csv, batch.timeline_csv(), "streamed fleet CSV diverged from batch");

        // Roles must mirror the window's census, and loaded servers
        // carry residency + their own p99.
        for event in &collector.events {
            let loaded = event.servers.iter().filter(|s| s.role == ServerRole::Loaded).count();
            let parked = event.servers.iter().filter(|s| s.role == ServerRole::Parked).count();
            assert_eq!(loaded, event.window.active - event.window.idle_active);
            assert_eq!(parked, event.window.parked);
            for s in &event.servers {
                if s.role == ServerRole::Loaded {
                    assert!(s.share_qps > 0.0);
                } else {
                    assert!(s.p99.is_none() && s.share_qps <= 0.0);
                }
            }
        }
    }

    #[test]
    fn identical_configs_produce_identical_reports() {
        let a = FleetSim::new(fleet(2, NamedConfig::NtBaseline, 8_000.0)).run();
        let b = FleetSim::new(fleet(2, NamedConfig::NtBaseline, 8_000.0)).run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "fleet run is not reproducible");
    }
}
