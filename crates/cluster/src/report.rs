//! Fleet-level aggregation: windowed time series, merged latency
//! quantiles, energy, SLO burn, and telemetry counters.

use std::collections::BTreeMap;
use std::fmt;

use aw_faults::FleetFailureArtifact;
use aw_server::{DegradationStats, LatencyStats};
use aw_types::{Joules, MilliWatts, Nanos, Ratio};
use serde::Serialize;

use crate::policy::RoutingPolicy;

/// Fleet-level degradation ledger: everything the fault-injection and
/// recovery machinery did to (and for) the fleet, plus the per-server
/// [`DegradationStats`] rolled up across every simulated server-epoch
/// (which earlier fleet reports silently dropped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FleetDegradation {
    /// Per-server degradation counters (sheds, timeouts, retries,
    /// breaker trips, …) summed over all simulated server-epochs.
    pub servers: DegradationStats,
    /// Server crashes (including those from rack outages).
    pub crashes: u64,
    /// Correlated rack-scoped outages.
    pub rack_outages: u64,
    /// Successful crash restarts.
    pub restarts: u64,
    /// Failed restart attempts (retried the next epoch).
    pub restart_failures: u64,
    /// Router ejections (crashed or persistently degraded servers).
    pub ejections: u64,
    /// Health re-probes of ejected servers.
    pub probes: u64,
    /// Readmissions after a healthy probe.
    pub readmissions: u64,
    /// Autoscaler unpark attempts that failed.
    pub unpark_failures: u64,
    /// Server-epochs served with a degraded (slow) link.
    pub degraded_server_epochs: u64,
    /// Server-epochs served under a capacity throttle.
    pub throttled_server_epochs: u64,
    /// Requests lost to mid-epoch crashes and re-offered to survivors
    /// in later epochs (jittered backoff).
    pub retried_requests: u64,
    /// Requests dropped at the balancer: no server in rotation, or
    /// retried traffic whose backoff landed past the end of the run.
    pub shed_requests: u64,
}

impl FleetDegradation {
    /// `true` if the fleet saw no fault, ejection, retry, or shed — and
    /// no per-server degradation either.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == FleetDegradation::default()
    }

    /// Field-wise accumulation of one simulated server-epoch's stats.
    pub(crate) fn absorb_server(&mut self, d: &DegradationStats) {
        let s = &mut self.servers;
        s.faults_injected += d.faults_injected;
        s.shed += d.shed;
        s.timeouts += d.timeouts;
        s.retries += d.retries;
        s.retries_exhausted += d.retries_exhausted;
        s.fallback_exits += d.fallback_exits;
        s.breaker_trips += d.breaker_trips;
        s.breaker_restores += d.breaker_restores;
        s.demoted_selections += d.demoted_selections;
    }
}

/// One epoch of fleet history — the fleet analogue of the per-server
/// attribution timeline window.
#[derive(Debug, Clone, Serialize)]
pub struct FleetWindow {
    /// Epoch index.
    pub epoch: usize,
    /// Epoch start time on the fleet clock.
    pub start: Nanos,
    /// Aggregate offered load this epoch (requests/s).
    pub offered_qps: f64,
    /// Requests completed fleet-wide in the epoch's measured window.
    pub completed: u64,
    /// Servers serving load this epoch.
    pub active: usize,
    /// Servers parked (suspended) this epoch.
    pub parked: usize,
    /// Servers that served zero load while unparked (deep package idle).
    pub idle_active: usize,
    /// Park transitions this epoch.
    pub parks: u64,
    /// Unpark transitions this epoch.
    pub unparks: u64,
    /// Average fleet power over the epoch (all packages + parked
    /// standing power + unpark bursts).
    pub fleet_power: MilliWatts,
    /// Merged request-latency summary across every server's samples —
    /// exact nearest-rank quantiles over the pooled samples, not an
    /// average of per-server percentiles.
    pub latency: LatencyStats,
    /// `true` if the epoch's fleet p99 exceeded the SLO target.
    pub slo_violated: bool,
    /// Idle-opportunity recovery across this epoch's loaded servers:
    /// achieved energy savings as a share of the oracle-achievable
    /// savings (see `aw_sleep`), in `[0, 1]`; 1.0 when no loaded server
    /// had anything to recover (all parked or analytically idle).
    pub recovery_ratio: f64,
    /// Servers crashed this epoch: mid-epoch casualties plus servers
    /// still dark from earlier crashes.
    pub crashed: usize,
    /// Servers up but ejected from the router's rotation.
    pub ejected: usize,
    /// Requests lost to crashes this epoch and re-offered to survivors
    /// in later epochs.
    pub retried: u64,
    /// Requests dropped at the balancer this epoch (empty rotation).
    pub shed: u64,
}

impl FleetWindow {
    /// Header line for [`FleetWindow::csv_row`] /
    /// [`FleetReport::timeline_csv`] output, newline-terminated.
    pub const CSV_HEADER: &'static str =
        "epoch,start_ms,offered_qps,completed,active,parked,idle_active,parks,unparks,\
         fleet_power_w,p50_us,p99_us,p999_us,slo_violated,recovery,crashed,ejected,\
         retried,shed\n";

    /// This window as one newline-terminated CSV row. Streamed windows
    /// rendered row by row concatenate to exactly the batch
    /// [`FleetReport::timeline_csv`] body.
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{}\n",
            self.epoch,
            self.start.as_millis(),
            self.offered_qps,
            self.completed,
            self.active,
            self.parked,
            self.idle_active,
            self.parks,
            self.unparks,
            self.fleet_power.as_watts(),
            self.latency.p50.as_micros(),
            self.latency.p99.as_micros(),
            self.latency.p999.as_micros(),
            u8::from(self.slo_violated),
            self.recovery_ratio,
            self.crashed,
            self.ejected,
            self.retried,
            self.shed,
        )
    }
}

/// Everything a fleet run produces.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// The routing policy that produced this report.
    pub policy: RoutingPolicy,
    /// Fleet size (servers).
    pub servers: usize,
    /// Cores per server.
    pub cores_per_server: usize,
    /// C-state menu name (e.g. `AW`, `Baseline`).
    pub config: String,
    /// Hardware model names cycled across server slots; empty for a
    /// homogeneous fleet running the prototype configuration. Kept out
    /// of serialized reports when empty so default runs are unchanged.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub hw: Vec<String>,
    /// Epoch duration.
    pub epoch: Nanos,
    /// Per-epoch history.
    pub windows: Vec<FleetWindow>,
    /// Fleet-wide latency over the whole run (pooled samples).
    pub latency: LatencyStats,
    /// Mean fleet power over the whole run.
    pub avg_fleet_power: MilliWatts,
    /// Total fleet energy over the whole run.
    pub energy: Joules,
    /// Total completions over the whole run.
    pub completed: u64,
    /// Total simulation events processed across every simulated
    /// server-epoch (queue pops plus inline idle-skip chain steps).
    /// Dividing by wall-clock gives the fleet engine throughput tracked
    /// in `BENCH_singlerun.json`.
    pub events: u64,
    /// Mean fleet energy per completed request.
    pub energy_per_request: Joules,
    /// Mean active servers per epoch.
    pub avg_active: f64,
    /// Fleet-wide mean C0 residency over simulated (loaded) servers,
    /// weighted by server-epochs.
    pub c0_residency: Ratio,
    /// Fleet-wide mean agile-state (C6A + C6AE) residency over simulated
    /// servers, weighted by server-epochs.
    pub agile_residency: Ratio,
    /// Fraction of unparked server-epochs whose package sat in PC6.
    pub pc6_fraction: Ratio,
    /// Run-wide idle-opportunity recovery over loaded servers: total
    /// achieved energy savings as a share of the oracle-achievable total
    /// (1.0 when nothing was recoverable).
    pub opportunity_recovery: Ratio,
    /// The p99 SLO target the windows were judged against.
    pub slo_p99: Nanos,
    /// Windows whose fleet p99 violated the target.
    pub slo_violations: usize,
    /// Fleet telemetry counters (`fleet.*`), exported from the internal
    /// metrics registry.
    pub counters: BTreeMap<String, u64>,
    /// Fleet-level degradation ledger: crashes, ejections, retries,
    /// sheds, and the rolled-up per-server [`DegradationStats`].
    pub degradation: FleetDegradation,
    /// Replayable record of the fleet fault events; `Some` only when an
    /// active fleet fault spec was configured.
    pub failure: Option<FleetFailureArtifact>,
}

impl FleetReport {
    /// Fraction of epochs that violated the SLO — the fleet burn rate.
    #[must_use]
    pub fn slo_burn_rate(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.slo_violations as f64 / self.windows.len() as f64
        }
    }

    /// The windowed time series as CSV (fleet analogue of the
    /// attribution timeline export).
    #[must_use]
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from(FleetWindow::CSV_HEADER);
        for w in &self.windows {
            out.push_str(&w.csv_row());
        }
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} × {}-core {} servers, policy {}, {} epochs of {}",
            self.servers,
            self.cores_per_server,
            self.config,
            self.policy,
            self.windows.len(),
            self.epoch
        )?;
        if !self.hw.is_empty() {
            writeln!(f, "  hw:      {} (cycled across server slots)", self.hw.join(", "))?;
        }
        writeln!(
            f,
            "  power:   {:.1} W avg ({:.3} mJ/request over {} requests)",
            self.avg_fleet_power.as_watts(),
            self.energy_per_request.as_microjoules() / 1e3,
            self.completed
        )?;
        writeln!(f, "  latency: {}", self.latency)?;
        writeln!(f, "  engine:  {} simulation events", self.events)?;
        writeln!(
            f,
            "  servers: {:.1} active avg, PC6 {:.0}% of unparked server-epochs, \
             C0 {:.1}% / agile {:.1}% on loaded servers",
            self.avg_active,
            self.pc6_fraction.as_percent(),
            self.c0_residency.as_percent(),
            self.agile_residency.as_percent()
        )?;
        writeln!(
            f,
            "  idle:    {:.1}% of the oracle-achievable idle savings recovered",
            self.opportunity_recovery.as_percent()
        )?;
        if !self.degradation.is_clean() {
            let d = &self.degradation;
            writeln!(
                f,
                "  chaos:   {} crash(es) ({} rack outage(s)), {} ejection(s), \
                 {} readmission(s), {} restart(s) (+{} failed), {} unpark failure(s)",
                d.crashes,
                d.rack_outages,
                d.ejections,
                d.readmissions,
                d.restarts,
                d.restart_failures,
                d.unpark_failures
            )?;
            writeln!(
                f,
                "           {} degraded / {} throttled server-epoch(s); \
                 {} request(s) retried, {} shed at the balancer",
                d.degraded_server_epochs,
                d.throttled_server_epochs,
                d.retried_requests,
                d.shed_requests
            )?;
        }
        write!(
            f,
            "  SLO:     p99 ≤ {} violated in {}/{} windows (burn rate {:.2})",
            self.slo_p99,
            self.slo_violations,
            self.windows.len(),
            self.slo_burn_rate()
        )
    }
}
