//! Fleet-level aggregation: windowed time series, merged latency
//! quantiles, energy, SLO burn, and telemetry counters.

use std::collections::BTreeMap;
use std::fmt;

use aw_server::LatencyStats;
use aw_types::{Joules, MilliWatts, Nanos, Ratio};
use serde::Serialize;

use crate::policy::RoutingPolicy;

/// One epoch of fleet history — the fleet analogue of the per-server
/// attribution timeline window.
#[derive(Debug, Clone, Serialize)]
pub struct FleetWindow {
    /// Epoch index.
    pub epoch: usize,
    /// Epoch start time on the fleet clock.
    pub start: Nanos,
    /// Aggregate offered load this epoch (requests/s).
    pub offered_qps: f64,
    /// Requests completed fleet-wide in the epoch's measured window.
    pub completed: u64,
    /// Servers serving load this epoch.
    pub active: usize,
    /// Servers parked (suspended) this epoch.
    pub parked: usize,
    /// Servers that served zero load while unparked (deep package idle).
    pub idle_active: usize,
    /// Park transitions this epoch.
    pub parks: u64,
    /// Unpark transitions this epoch.
    pub unparks: u64,
    /// Average fleet power over the epoch (all packages + parked
    /// standing power + unpark bursts).
    pub fleet_power: MilliWatts,
    /// Merged request-latency summary across every server's samples —
    /// exact nearest-rank quantiles over the pooled samples, not an
    /// average of per-server percentiles.
    pub latency: LatencyStats,
    /// `true` if the epoch's fleet p99 exceeded the SLO target.
    pub slo_violated: bool,
    /// Idle-opportunity recovery across this epoch's loaded servers:
    /// achieved energy savings as a share of the oracle-achievable
    /// savings (see `aw_sleep`), in `[0, 1]`; 1.0 when no loaded server
    /// had anything to recover (all parked or analytically idle).
    pub recovery_ratio: f64,
}

impl FleetWindow {
    /// Header line for [`FleetWindow::csv_row`] /
    /// [`FleetReport::timeline_csv`] output, newline-terminated.
    pub const CSV_HEADER: &'static str =
        "epoch,start_ms,offered_qps,completed,active,parked,idle_active,parks,unparks,\
         fleet_power_w,p50_us,p99_us,p999_us,slo_violated,recovery\n";

    /// This window as one newline-terminated CSV row. Streamed windows
    /// rendered row by row concatenate to exactly the batch
    /// [`FleetReport::timeline_csv`] body.
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6}\n",
            self.epoch,
            self.start.as_millis(),
            self.offered_qps,
            self.completed,
            self.active,
            self.parked,
            self.idle_active,
            self.parks,
            self.unparks,
            self.fleet_power.as_watts(),
            self.latency.p50.as_micros(),
            self.latency.p99.as_micros(),
            self.latency.p999.as_micros(),
            u8::from(self.slo_violated),
            self.recovery_ratio,
        )
    }
}

/// Everything a fleet run produces.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// The routing policy that produced this report.
    pub policy: RoutingPolicy,
    /// Fleet size (servers).
    pub servers: usize,
    /// Cores per server.
    pub cores_per_server: usize,
    /// C-state menu name (e.g. `AW`, `Baseline`).
    pub config: String,
    /// Epoch duration.
    pub epoch: Nanos,
    /// Per-epoch history.
    pub windows: Vec<FleetWindow>,
    /// Fleet-wide latency over the whole run (pooled samples).
    pub latency: LatencyStats,
    /// Mean fleet power over the whole run.
    pub avg_fleet_power: MilliWatts,
    /// Total fleet energy over the whole run.
    pub energy: Joules,
    /// Total completions over the whole run.
    pub completed: u64,
    /// Mean fleet energy per completed request.
    pub energy_per_request: Joules,
    /// Mean active servers per epoch.
    pub avg_active: f64,
    /// Fleet-wide mean C0 residency over simulated (loaded) servers,
    /// weighted by server-epochs.
    pub c0_residency: Ratio,
    /// Fleet-wide mean agile-state (C6A + C6AE) residency over simulated
    /// servers, weighted by server-epochs.
    pub agile_residency: Ratio,
    /// Fraction of unparked server-epochs whose package sat in PC6.
    pub pc6_fraction: Ratio,
    /// Run-wide idle-opportunity recovery over loaded servers: total
    /// achieved energy savings as a share of the oracle-achievable total
    /// (1.0 when nothing was recoverable).
    pub opportunity_recovery: Ratio,
    /// The p99 SLO target the windows were judged against.
    pub slo_p99: Nanos,
    /// Windows whose fleet p99 violated the target.
    pub slo_violations: usize,
    /// Fleet telemetry counters (`fleet.*`), exported from the internal
    /// metrics registry.
    pub counters: BTreeMap<String, u64>,
}

impl FleetReport {
    /// Fraction of epochs that violated the SLO — the fleet burn rate.
    #[must_use]
    pub fn slo_burn_rate(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.slo_violations as f64 / self.windows.len() as f64
        }
    }

    /// The windowed time series as CSV (fleet analogue of the
    /// attribution timeline export).
    #[must_use]
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from(FleetWindow::CSV_HEADER);
        for w in &self.windows {
            out.push_str(&w.csv_row());
        }
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} × {}-core {} servers, policy {}, {} epochs of {}",
            self.servers,
            self.cores_per_server,
            self.config,
            self.policy,
            self.windows.len(),
            self.epoch
        )?;
        writeln!(
            f,
            "  power:   {:.1} W avg ({:.3} mJ/request over {} requests)",
            self.avg_fleet_power.as_watts(),
            self.energy_per_request.as_microjoules() / 1e3,
            self.completed
        )?;
        writeln!(f, "  latency: {}", self.latency)?;
        writeln!(
            f,
            "  servers: {:.1} active avg, PC6 {:.0}% of unparked server-epochs, \
             C0 {:.1}% / agile {:.1}% on loaded servers",
            self.avg_active,
            self.pc6_fraction.as_percent(),
            self.c0_residency.as_percent(),
            self.agile_residency.as_percent()
        )?;
        writeln!(
            f,
            "  idle:    {:.1}% of the oracle-achievable idle savings recovered",
            self.opportunity_recovery.as_percent()
        )?;
        write!(
            f,
            "  SLO:     p99 ≤ {} violated in {}/{} windows (burn rate {:.2})",
            self.slo_p99,
            self.slo_violations,
            self.windows.len(),
            self.slo_burn_rate()
        )
    }
}
