//! The fleet-level diurnal autoscaler: parks whole servers when the
//! offered load drops and unparks them ahead of demand, with modeled
//! park/unpark latency and energy.
//!
//! This is the layer the paper's datacenter argument (Sec. 1) points at:
//! per-core C-states recover *core* power, but a mostly idle server still
//! burns its uncore at PC0 unless the whole package can be vacated.
//! Parking — suspending a server entirely — is the fleet analogue of a
//! package C-state, and like a C-state it has a transition cost: an
//! unparking server serves only part of an epoch, so scaling decisions
//! pay latency for their energy savings.

use aw_types::{Joules, MilliWatts, Nanos};

/// Autoscaler parameters.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct AutoscalePolicy {
    /// Target per-server utilization the scaler sizes the active set
    /// for: `active = ceil(offered / (target_utilization × capacity))`.
    pub target_utilization: f64,
    /// Lower bound on the active set (never park the whole fleet).
    pub min_active: usize,
    /// Wall-clock latency of an unpark (boot/resume): the server serves
    /// only the remainder of the epoch it unparks in.
    pub unpark_latency: Nanos,
    /// Standing power of a parked server (platform suspend, not off).
    pub park_power: MilliWatts,
    /// One-off energy charged per unpark transition (boot burst).
    pub unpark_energy: Joules,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            target_utilization: 0.6,
            min_active: 1,
            unpark_latency: Nanos::from_millis(5.0),
            park_power: MilliWatts::from_watts(0.5),
            unpark_energy: Joules::new(0.05),
        }
    }
}

impl AutoscalePolicy {
    /// The number of servers the scaler wants active for `offered_qps`,
    /// clamped to `[min_active, fleet_size]`.
    #[must_use]
    pub fn target_active(&self, offered_qps: f64, capacity_qps: f64, fleet_size: usize) -> usize {
        assert!(self.target_utilization > 0.0, "target utilization must be positive");
        assert!(capacity_qps > 0.0, "capacity must be positive");
        let wanted = (offered_qps / (self.target_utilization * capacity_qps)).ceil() as usize;
        wanted.clamp(self.min_active.max(1).min(fleet_size), fleet_size)
    }

    /// The fraction of an `epoch` a freshly unparked server can serve.
    #[must_use]
    pub fn unpark_availability(&self, epoch: Nanos) -> f64 {
        if epoch <= Nanos::ZERO {
            return 0.0;
        }
        (1.0 - self.unpark_latency / epoch).clamp(0.0, 1.0)
    }
}

/// One epoch's scaling decision: per-server availability plus the
/// transition counts the decision incurred against the previous epoch's
/// active set.
#[derive(Debug, Clone)]
pub struct ScaleDecision {
    /// Per-server serve fraction for the epoch: `1.0` steady active,
    /// `(0, 1)` unparking this epoch, `0.0` parked (or ineligible).
    pub availability: Vec<f64>,
    /// Servers parked by this decision.
    pub parks: u64,
    /// Servers unparked by this decision.
    pub unparks: u64,
    /// Unpark attempts that failed: the slot stays dark this epoch and
    /// is retried at the next decision. Always zero without a fault
    /// plan.
    pub unpark_failures: u64,
}

/// Tracks the active set across epochs and emits one [`ScaleDecision`]
/// per epoch. Servers are parked from the top of the index range and
/// unparked from the bottom — deterministic, and exactly what packing
/// wants (the load concentrates on low indices, so high indices are the
/// cold ones).
#[derive(Debug)]
pub struct Autoscaler {
    policy: Option<AutoscalePolicy>,
    fleet_size: usize,
    active: Vec<bool>,
}

impl Autoscaler {
    /// A scaler over `fleet_size` servers; `None` disables scaling (the
    /// whole fleet stays active and every decision is all-ones).
    #[must_use]
    pub fn new(policy: Option<AutoscalePolicy>, fleet_size: usize) -> Self {
        assert!(fleet_size > 0, "fleet must have at least one server");
        Autoscaler { policy, fleet_size, active: vec![true; fleet_size] }
    }

    /// Decides the epoch's active set for `offered_qps`. `force_all`
    /// (the spreading policy) pins every server active regardless of the
    /// scaling target.
    pub fn decide(
        &mut self,
        offered_qps: f64,
        capacity_qps: f64,
        epoch: Nanos,
        force_all: bool,
    ) -> ScaleDecision {
        let eligible = vec![true; self.fleet_size];
        self.decide_faulty(offered_qps, capacity_qps, epoch, force_all, &eligible, |_| true)
    }

    /// [`Autoscaler::decide`] under faults: only `eligible` servers
    /// (healthy and in the router's rotation) can be activated, and
    /// every park→active transition must pass `unpark_ok` — a failed
    /// unpark leaves the slot dark for the epoch (counted in
    /// [`ScaleDecision::unpark_failures`]) and is retried at the next
    /// decision instead of being silently replaced, so unpark failures
    /// cost real capacity under pressure.
    ///
    /// With every server eligible and `unpark_ok` always true this is
    /// exactly [`Autoscaler::decide`]: the first `target` servers in
    /// index order are active, newly activated ones pay the unpark
    /// latency.
    pub fn decide_faulty(
        &mut self,
        offered_qps: f64,
        capacity_qps: f64,
        epoch: Nanos,
        force_all: bool,
        eligible: &[bool],
        mut unpark_ok: impl FnMut(usize) -> bool,
    ) -> ScaleDecision {
        assert_eq!(eligible.len(), self.fleet_size, "eligibility mask must cover the fleet");
        let target = match (&self.policy, force_all) {
            (None, _) | (_, true) => self.fleet_size,
            (Some(p), false) => p.target_active(offered_qps, capacity_qps, self.fleet_size),
        };
        let unpark_avail = self.policy.as_ref().map_or(1.0, |p| p.unpark_availability(epoch));

        let mut availability = vec![0.0; self.fleet_size];
        let mut next_active = vec![false; self.fleet_size];
        let (mut activated, mut parks, mut unparks, mut unpark_failures) =
            (0usize, 0u64, 0u64, 0u64);
        for i in 0..self.fleet_size {
            if !eligible[i] || activated >= target {
                continue;
            }
            if self.active[i] {
                next_active[i] = true;
                availability[i] = 1.0;
                activated += 1;
            } else if unpark_ok(i) {
                next_active[i] = true;
                availability[i] = unpark_avail;
                activated += 1;
                unparks += 1;
            } else {
                // Failed unpark: the slot stays dark and still counts
                // against the target — the fleet runs short this epoch.
                activated += 1;
                unpark_failures += 1;
            }
        }
        for i in 0..self.fleet_size {
            // Deliberate parks only: an eligible server dropped from the
            // active set. Crashed/ejected servers fall out of the set
            // without counting as park transitions.
            if self.active[i] && !next_active[i] && eligible[i] {
                parks += 1;
            }
        }
        self.active = next_active;
        ScaleDecision { availability, parks, unparks, unpark_failures }
    }

    /// Servers currently active.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy::default()
    }

    #[test]
    fn target_tracks_offered_load() {
        let p = policy();
        // 0.6 target util × 1000 QPS capacity = 600 QPS per server.
        assert_eq!(p.target_active(0.0, 1000.0, 8), 1, "min_active floor");
        assert_eq!(p.target_active(600.0, 1000.0, 8), 1);
        assert_eq!(p.target_active(601.0, 1000.0, 8), 2);
        assert_eq!(p.target_active(4800.0, 1000.0, 8), 8);
        assert_eq!(p.target_active(50_000.0, 1000.0, 8), 8, "fleet-size ceiling");
    }

    #[test]
    fn unpark_availability_scales_with_epoch() {
        let p = policy();
        assert!((p.unpark_availability(Nanos::from_millis(50.0)) - 0.9).abs() < 1e-9);
        assert_eq!(p.unpark_availability(Nanos::from_millis(2.0)), 0.0, "clamped at zero");
    }

    #[test]
    fn scale_up_marks_unparking_servers() {
        let mut s = Autoscaler::new(Some(policy()), 4);
        // Scale down to 1 first, then back up to 3.
        let down = s.decide(100.0, 1000.0, Nanos::from_millis(50.0), false);
        assert_eq!(down.availability, vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(down.parks, 3);
        let up = s.decide(1500.0, 1000.0, Nanos::from_millis(50.0), false);
        assert_eq!(up.unparks, 2);
        assert!((up.availability[0] - 1.0).abs() < 1e-9, "steady server is fully available");
        assert!((up.availability[1] - 0.9).abs() < 1e-9, "unparking server pays boot latency");
        assert_eq!(up.availability[3], 0.0);
    }

    #[test]
    fn disabled_scaler_keeps_everything_active() {
        let mut s = Autoscaler::new(None, 3);
        let d = s.decide(1.0, 1000.0, Nanos::from_millis(50.0), false);
        assert_eq!(d.availability, vec![1.0; 3]);
        assert_eq!(d.parks + d.unparks, 0);
    }

    #[test]
    fn force_all_overrides_the_target() {
        let mut s = Autoscaler::new(Some(policy()), 4);
        let d = s.decide(100.0, 1000.0, Nanos::from_millis(50.0), true);
        assert_eq!(d.availability, vec![1.0; 4], "spreading pins the fleet active");
    }
}
