//! Pins the steady-state allocation behaviour of the single-run engine.
//!
//! Once the pre-sized structures (event-queue calendar, per-core run
//! queues, sample reservoirs) reach capacity, the hot loop performs no
//! per-event heap allocation: every request flows through `Copy` queue
//! slots, fixed-slot residency accumulators, and reservoirs sized off
//! the offered load at the warm-up boundary. A counting global
//! allocator checks the property the way a reviewer would: quadrupling
//! the simulated duration (≈4× the events) must not meaningfully grow
//! the allocation count, i.e. allocations are O(1)-ish in run length,
//! not O(events).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use aw_server::{ServerConfig, SimBuilder, WorkloadSpec};
use aw_types::Nanos;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocation count and completed requests for one run of `millis`
/// simulated milliseconds.
fn run_and_count(millis: f64) -> (u64, u64) {
    let config =
        ServerConfig::new(4, aw_cstates::NamedConfig::Aw).with_duration(Nanos::from_millis(millis));
    let workload = WorkloadSpec::poisson("alloc-pin", 200_000.0, Nanos::from_micros(3.0), 0.8);
    let builder = SimBuilder::new(config, workload, 42);
    let before = ALLOCS.load(Ordering::Relaxed);
    let metrics = builder.run().into_metrics();
    (ALLOCS.load(Ordering::Relaxed) - before, metrics.completed)
}

#[test]
fn steady_state_allocations_are_flat_in_run_length() {
    // Warm up lazily initialised library state (thread-locals, stdio)
    // so it doesn't pollute the measured counts.
    let _ = run_and_count(5.0);

    let (short_allocs, short_completed) = run_and_count(50.0);
    let (long_allocs, long_completed) = run_and_count(200.0);
    let extra_events = (long_completed - short_completed).max(1);

    // The long run serves ~4x the requests. If the hot path allocated
    // even once per request, `long - short` would be ~3x the completed
    // delta; flat means the difference is set-up noise (a few doubling
    // steps in growing structures, an occasional calendar re-tune).
    let extra_allocs = long_allocs.saturating_sub(short_allocs);
    assert!(
        extra_allocs < 256 && extra_allocs < extra_events / 64,
        "steady-state loop allocates: {short_allocs} allocs for {short_completed} requests vs \
         {long_allocs} for {long_completed} ({extra_allocs} extra allocs, {extra_events} extra \
         requests)"
    );
}
