//! Property-based tests of the full server simulator's invariants,
//! across random loads, configurations, and seeds.

use aw_cstates::{CState, FreqLevel, NamedConfig};
use aw_server::{Dispatch, GovernorKind, ServerConfig, SimBuilder, WorkloadSpec};
use aw_types::Nanos;
use proptest::prelude::*;

fn run(
    named: NamedConfig,
    cores: usize,
    qps: f64,
    service_us: f64,
    seed: u64,
    governor: GovernorKind,
    dispatch: Dispatch,
) -> aw_server::RunMetrics {
    let cfg = ServerConfig::new(cores, named)
        .with_duration(Nanos::from_millis(30.0))
        .with_governor(governor)
        .with_dispatch(dispatch);
    let w = WorkloadSpec::poisson("prop", qps, Nanos::from_micros(service_us), 0.7);
    SimBuilder::new(cfg, w, seed).run().into_metrics()
}

fn config_strategy() -> impl Strategy<Value = NamedConfig> {
    (0usize..NamedConfig::ALL.len()).prop_map(|i| NamedConfig::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any stable configuration: residencies sum to one, power sits
    /// between the deepest idle power and the Turbo ceiling, and only
    /// enabled states are ever occupied.
    #[test]
    fn invariants_hold_across_the_config_space(
        named in config_strategy(),
        cores in 1usize..6,
        qps in 5_000.0f64..200_000.0,
        service_us in 1.0f64..8.0,
        seed: u64,
    ) {
        let m = run(named, cores, qps, service_us, seed, GovernorKind::Menu, Dispatch::RoundRobin);
        prop_assert!(m.residencies.is_complete(1e-6), "{}", m.residencies.total());

        let catalog = aw_server::HardwareModel::skylake_sp().catalog();
        let floor = catalog.power(CState::C6, FreqLevel::P1);
        let ceiling = aw_types::MilliWatts::from_watts(6.5);
        prop_assert!(m.avg_core_power >= floor * 0.9, "{}", m.avg_core_power);
        prop_assert!(m.avg_core_power <= ceiling, "{}", m.avg_core_power);

        let mask = named.config();
        for state in CState::IDLE {
            if !mask.is_enabled(state) {
                prop_assert_eq!(
                    m.residency_of(state),
                    aw_types::Ratio::ZERO,
                    "{} occupied under {}",
                    state,
                    named
                );
            }
        }
    }

    /// Throughput keeps up with offered load whenever utilization is
    /// comfortably below saturation.
    #[test]
    fn no_silent_request_loss(
        named in config_strategy(),
        seed: u64,
    ) {
        // 4 cores × 4 µs services at 150 K QPS → ~15% utilization.
        let m = run(named, 4, 150_000.0, 4.0, seed, GovernorKind::Menu, Dispatch::RoundRobin);
        let ratio = m.achieved_qps / m.offered_qps;
        prop_assert!((0.85..1.15).contains(&ratio), "{named}: {ratio}");
    }

    /// Latency decomposition components always reassemble the mean.
    #[test]
    fn breakdown_reassembles_mean(named in config_strategy(), seed: u64, qps in 20_000.0f64..120_000.0) {
        let m = run(named, 4, qps, 4.0, seed, GovernorKind::Menu, Dispatch::RoundRobin);
        if m.completed > 100 {
            let total = m.breakdown.total().as_nanos();
            let mean = m.server_latency.mean.as_nanos();
            prop_assert!((total - mean).abs() / mean < 0.02, "{total} vs {mean}");
        }
    }

    /// Determinism holds for every governor and dispatch policy.
    #[test]
    fn determinism_across_policies(
        seed: u64,
        gov in prop::sample::select(vec![GovernorKind::Menu, GovernorKind::Ladder, GovernorKind::Oracle]),
        disp in prop::sample::select(vec![Dispatch::RoundRobin, Dispatch::Random, Dispatch::LeastLoaded]),
    ) {
        let a = run(NamedConfig::Baseline, 3, 60_000.0, 4.0, seed, gov, disp);
        let b = run(NamedConfig::Baseline, 3, 60_000.0, 4.0, seed, gov, disp);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.avg_core_power, b.avg_core_power);
        prop_assert_eq!(a.server_latency.p99, b.server_latency.p99);
    }

    /// Package-state residencies partition time, and PC6 only appears
    /// when C6 is enabled.
    #[test]
    fn package_states_partition(named in config_strategy(), seed: u64) {
        let m = run(named, 2, 10_000.0, 4.0, seed, GovernorKind::Menu, Dispatch::RoundRobin);
        let sum: f64 = m.package_residency.iter().map(|r| r.get()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "{sum}");
        if !named.config().is_enabled(CState::C6) {
            prop_assert_eq!(m.package_residency[2], aw_types::Ratio::ZERO);
        }
    }

    /// Energy per request is positive and finite whenever work completed.
    #[test]
    fn energy_per_request_sane(named in config_strategy(), seed: u64) {
        let m = run(named, 4, 80_000.0, 4.0, seed, GovernorKind::Menu, Dispatch::RoundRobin);
        if m.completed > 0 {
            let e = m.energy_per_request().as_joules();
            prop_assert!(e > 0.0 && e.is_finite());
            // Sanity band: 4-core package at ≤36 W / ≥80 K req/s ⇒ ≤0.5 mJ;
            // ≥2 W package at ≤90 K req/s ⇒ ≥20 µJ.
            prop_assert!((2e-5..5e-4).contains(&e), "{e}");
        }
    }
}
