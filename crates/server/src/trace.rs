//! Static trace labels for core states.
//!
//! Telemetry events carry `&'static str` labels so emission never
//! allocates. Transitional occupancies get their own labels
//! (`enter:C6A`, `exit:C6A`) so a Chrome-trace track shows the full
//! life cycle — active, entering, resident, waking — as distinct,
//! non-overlapping slices.

use aw_cstates::CState;

use crate::core::CoreState;

/// The label of a resident C-state.
#[must_use]
pub fn cstate_label(state: CState) -> &'static str {
    match state {
        CState::C0 => "C0",
        CState::C1 => "C1",
        CState::C1E => "C1E",
        CState::C6A => "C6A",
        CState::C6AE => "C6AE",
        CState::C6 => "C6",
    }
}

/// The label of an entry transition into `state`.
#[must_use]
pub fn enter_label(state: CState) -> &'static str {
    match state {
        CState::C0 => "enter:C0",
        CState::C1 => "enter:C1",
        CState::C1E => "enter:C1E",
        CState::C6A => "enter:C6A",
        CState::C6AE => "enter:C6AE",
        CState::C6 => "enter:C6",
    }
}

/// The label of an exit transition out of `state`.
#[must_use]
pub fn exit_label(state: CState) -> &'static str {
    match state {
        CState::C0 => "exit:C0",
        CState::C1 => "exit:C1",
        CState::C1E => "exit:C1E",
        CState::C6A => "exit:C6A",
        CState::C6AE => "exit:C6AE",
        CState::C6 => "exit:C6",
    }
}

/// The trace label of a full core state (active, entering, idle, waking).
#[must_use]
pub fn core_state_label(state: CoreState) -> &'static str {
    match state {
        CoreState::Active => "C0",
        CoreState::Entering { target } => enter_label(target),
        CoreState::Idle { state } => cstate_label(state),
        CoreState::Waking { from } => exit_label(from),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_display() {
        for s in [CState::C0, CState::C1, CState::C1E, CState::C6A, CState::C6AE, CState::C6] {
            assert_eq!(cstate_label(s), s.to_string());
            assert_eq!(enter_label(s), format!("enter:{s}"));
            assert_eq!(exit_label(s), format!("exit:{s}"));
        }
    }

    #[test]
    fn core_states_have_distinct_labels() {
        let a = core_state_label(CoreState::Active);
        let b = core_state_label(CoreState::Entering { target: CState::C6A });
        let c = core_state_label(CoreState::Idle { state: CState::C6A });
        let d = core_state_label(CoreState::Waking { from: CState::C6A });
        assert_eq!(a, "C0");
        assert_eq!(b, "enter:C6A");
        assert_eq!(c, "C6A");
        assert_eq!(d, "exit:C6A");
    }
}
