//! The Turbo thermal-capacitance model (Sec. 7.3).
//!
//! Turbo boost is opportunistic: a core may exceed its sustained power
//! budget only while the package has accumulated thermal headroom. Time
//! spent below the budget (idle states — the lower their power, the
//! faster) builds *thermal credit*; running above it (Turbo frequency)
//! drains the credit. This is why the paper finds that disabling C1E to
//! cut its transition latency also sabotages Turbo: the core idles hot in
//! C1 and never accumulates capacitance — while C6A provides both low idle
//! power (credit accrues) and nanosecond transitions.

use aw_types::{Joules, MilliWatts, Nanos};

/// Per-core thermal-capacitance accumulator gating Turbo.
///
/// # Examples
///
/// ```
/// use aw_server::ThermalModel;
/// use aw_types::{MilliWatts, Nanos};
///
/// let mut t = ThermalModel::skylake();
/// assert!(!t.turbo_available()); // starts with no credit
///
/// // A long stretch of deep idle builds credit:
/// t.advance(MilliWatts::new(300.0), Nanos::from_millis(50.0));
/// assert!(t.turbo_available());
///
/// // Sustained Turbo drains it again:
/// t.advance(MilliWatts::from_watts(6.0), Nanos::from_secs(2.0));
/// assert!(!t.turbo_available());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    credit: Joules,
    max_credit: Joules,
    enable_threshold: Joules,
    sustained_power: MilliWatts,
    turbo_power: MilliWatts,
}

impl ThermalModel {
    /// A Skylake-like core: 2.5 W sustained per-core budget (the 85 W
    /// package TDP split across cores after uncore overheads), 6 W at
    /// Turbo, up to 0.3 J of bankable headroom, Turbo enabled above
    /// 0.03 J. The tight budget is what makes the Sec. 7.3 interplay
    /// visible: a core idling in C1 (1.44 W) banks credit at ~1 W while
    /// one idling in C6A (0.3 W) banks at ~2.2 W — so low-power idle
    /// states directly buy Turbo residency.
    #[must_use]
    pub fn skylake() -> Self {
        ThermalModel {
            credit: Joules::ZERO,
            max_credit: Joules::new(0.3),
            enable_threshold: Joules::new(0.03),
            sustained_power: MilliWatts::from_watts(2.5),
            turbo_power: MilliWatts::from_watts(6.0),
        }
    }

    /// Creates a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `enable_threshold > max_credit` or the Turbo power does
    /// not exceed the sustained budget.
    #[must_use]
    pub fn new(
        max_credit: Joules,
        enable_threshold: Joules,
        sustained_power: MilliWatts,
        turbo_power: MilliWatts,
    ) -> Self {
        assert!(enable_threshold <= max_credit, "threshold must fit in the bank");
        assert!(turbo_power > sustained_power, "turbo must exceed the sustained budget");
        ThermalModel {
            credit: Joules::ZERO,
            max_credit,
            enable_threshold,
            sustained_power,
            turbo_power,
        }
    }

    /// Accumulates (or drains) credit for `dt` spent at `power`.
    pub fn advance(&mut self, power: MilliWatts, dt: Nanos) {
        let delta = (self.sustained_power - power) * dt;
        let next = (self.credit + delta).as_joules().clamp(0.0, self.max_credit.as_joules());
        self.credit = Joules::new(next);
    }

    /// `true` if enough credit is banked to run at Turbo frequency.
    #[must_use]
    pub fn turbo_available(&self) -> bool {
        self.credit >= self.enable_threshold
    }

    /// Currently banked credit.
    #[must_use]
    pub fn credit(&self) -> Joules {
        self.credit
    }

    /// The per-core power drawn while running at Turbo frequency.
    #[must_use]
    pub fn turbo_power(&self) -> MilliWatts {
        self.turbo_power
    }

    /// The sustained (credit-neutral) power budget.
    #[must_use]
    pub fn sustained_power(&self) -> MilliWatts {
        self.sustained_power
    }

    /// Resets the bank to empty.
    pub fn reset(&mut self) {
        self.credit = Joules::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_accrues_faster_at_lower_idle_power() {
        let mut c1 = ThermalModel::skylake();
        let mut c6a = ThermalModel::skylake();
        let dt = Nanos::from_millis(50.0);
        c1.advance(MilliWatts::from_watts(1.44), dt);
        c6a.advance(MilliWatts::new(302.5), dt);
        assert!(c6a.credit() > c1.credit());
    }

    #[test]
    fn credit_saturates() {
        let mut t = ThermalModel::skylake();
        t.advance(MilliWatts::ZERO, Nanos::from_secs(100.0));
        assert_eq!(t.credit(), Joules::new(0.3));
    }

    #[test]
    fn credit_never_negative() {
        let mut t = ThermalModel::skylake();
        t.advance(MilliWatts::from_watts(6.0), Nanos::from_secs(100.0));
        assert_eq!(t.credit(), Joules::ZERO);
    }

    #[test]
    fn threshold_gates_turbo() {
        let mut t = ThermalModel::skylake();
        assert!(!t.turbo_available());
        // 0.03 J at a ~2.2 W surplus (idle at 0.3 W) needs ~14 ms.
        t.advance(MilliWatts::new(300.0), Nanos::from_millis(15.0));
        assert!(t.turbo_available());
    }

    #[test]
    fn sustained_power_is_credit_neutral() {
        let mut t = ThermalModel::skylake();
        t.advance(MilliWatts::new(300.0), Nanos::from_millis(100.0));
        let before = t.credit();
        t.advance(t.sustained_power(), Nanos::from_secs(1.0));
        assert_eq!(t.credit(), before);
    }

    #[test]
    fn reset_empties_bank() {
        let mut t = ThermalModel::skylake();
        t.advance(MilliWatts::ZERO, Nanos::from_secs(1.0));
        t.reset();
        assert_eq!(t.credit(), Joules::ZERO);
        assert!(!t.turbo_available());
    }

    #[test]
    #[should_panic(expected = "turbo must exceed")]
    fn rejects_weak_turbo() {
        let _ = ThermalModel::new(
            Joules::new(1.0),
            Joules::new(0.1),
            MilliWatts::from_watts(4.0),
            MilliWatts::from_watts(3.0),
        );
    }
}
