//! Run metrics: the observables the paper's evaluation reports.

use std::collections::BTreeMap;
use std::fmt;

use aw_cstates::CState;
use aw_power::ResidencyVector;
use aw_sim::SampleSet;
use aw_telemetry::{AttributionSummary, TelemetrySummary};
use aw_types::{MilliWatts, Nanos, Ratio};
use serde::Serialize;

use crate::uncore::PackageCState;

/// Latency distribution summary: mean, median, p99 ("tail"), p99.9, and
/// max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean: Nanos,
    /// Median (p50).
    pub p50: Nanos,
    /// 99th percentile — the paper's "tail latency".
    pub p99: Nanos,
    /// 99.9th percentile — the deeper tail the paper's latency CDFs
    /// extend past p99, where C6 exit penalties concentrate.
    pub p999: Nanos,
    /// Maximum observed.
    pub max: Nanos,
    /// Number of samples summarized. Zero marks "no data": the
    /// statistics above are filler zeros, not measured values.
    pub count: u64,
}

impl LatencyStats {
    /// Summarizes a sample set. An empty set yields zero statistics with
    /// [`LatencyStats::count`] of zero, which [`LatencyStats::is_empty`]
    /// and the `Display` impl surface explicitly — a run that completed
    /// nothing must not masquerade as one with zero-nanosecond latency.
    #[must_use]
    pub fn from_samples(samples: &mut SampleSet) -> Self {
        LatencyStats {
            mean: Nanos::new(samples.mean().unwrap_or(0.0)),
            p50: Nanos::new(samples.median().unwrap_or(0.0)),
            p99: Nanos::new(samples.p99().unwrap_or(0.0)),
            p999: Nanos::new(samples.percentile(0.999).unwrap_or(0.0)),
            max: Nanos::new(samples.percentile(1.0).unwrap_or(0.0)),
            count: samples.len() as u64,
        }
    }

    /// `true` if no samples back these statistics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns a copy with `offset` added to every statistic (used to turn
    /// server-side latency into end-to-end latency by adding the network
    /// round trip). An empty summary stays empty: there is nothing to
    /// offset.
    ///
    /// **Exactness assumption.** Adding a constant to each summarized
    /// percentile is exact *only when the offset is deterministic*:
    /// quantiles are order statistics, and adding the same constant `c`
    /// to every sample preserves their order, so `Q(X + c) = Q(X) + c`
    /// for every quantile (and the mean and max). The simulator's
    /// network RTT (`Workload::network_rtt`) is a fixed per-workload
    /// constant, which is why `end_to_end_latency` can be derived this
    /// way instead of re-summarizing offset samples. If the RTT were
    /// random, `Q(X + R)` would generally differ from `Q(X) + Q(R)`
    /// (quantiles are not additive across independent variables), and
    /// the offset percentiles would be wrong — the unit test
    /// `offset_by_matches_per_sample_offsetting` pins the deterministic
    /// case and documents the failure of a random one.
    #[must_use]
    pub fn offset_by(&self, offset: Nanos) -> LatencyStats {
        if self.is_empty() {
            return *self;
        }
        LatencyStats {
            mean: self.mean + offset,
            p50: self.p50 + offset,
            p99: self.p99 + offset,
            p999: self.p999 + offset,
            max: self.max + offset,
            count: self.count,
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no samples");
        }
        write!(
            f,
            "mean={} p50={} p99={} p999={} max={}",
            self.mean, self.p50, self.p99, self.p999, self.max
        )
    }
}

/// Decomposition of mean server-side sojourn time into its causes.
///
/// `transition + queue + service ≈ server_latency.mean`: the transition
/// component is the idle-state exit latency personally absorbed by
/// wake-triggering requests (averaged over *all* requests), the queue
/// component is time spent behind other requests, and service is the
/// execution time itself. This is the quantity behind the paper's
/// Fig. 8(c) worst/expected analysis: AW shrinks the transition share to
/// nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencyBreakdown {
    /// Mean idle-exit latency absorbed per request.
    pub transition: Nanos,
    /// Mean time queued behind other requests.
    pub queue: Nanos,
    /// Mean service (execution) time.
    pub service: Nanos,
}

impl LatencyBreakdown {
    /// The sum of the components (≈ mean server latency).
    #[must_use]
    pub fn total(&self) -> Nanos {
        self.transition + self.queue + self.service
    }

    /// The transition component as a fraction of the total.
    #[must_use]
    pub fn transition_share(&self) -> Ratio {
        let t = self.total();
        if t <= Nanos::ZERO {
            Ratio::ZERO
        } else {
            Ratio::new(self.transition / t)
        }
    }
}

/// Counters for fault injection, overload protection, and graceful
/// degradation over the whole run (warm-up included: degradation events
/// are accounting facts, not performance samples, so they are never
/// reset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct DegradationStats {
    /// Faults injected from the active fault plan.
    pub faults_injected: u64,
    /// Requests shed at a full bounded queue.
    pub shed: u64,
    /// Requests abandoned after waiting past the request timeout.
    pub timeouts: u64,
    /// Client retries submitted after shed/timeout.
    pub retries: u64,
    /// Requests dropped for good after exhausting their retry budget.
    pub retries_exhausted: u64,
    /// Agile exits that exhausted their UFPG retry budget and fell back
    /// to the full legacy C6 restore path.
    pub fallback_exits: u64,
    /// Circuit-breaker trips (agile states demoted).
    pub breaker_trips: u64,
    /// Circuit-breaker re-arms after cooldown.
    pub breaker_restores: u64,
    /// Idle-state selections made from a demoted (breaker-open) config.
    pub demoted_selections: u64,
}

impl DegradationStats {
    /// `true` if nothing degraded: no faults fired and no overload
    /// protection engaged.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == DegradationStats::default()
    }
}

impl fmt::Display for DegradationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean run (no faults, no shedding)");
        }
        write!(
            f,
            "faults={} shed={} timeouts={} retries={} dropped={} fallbacks={} trips={} restores={}",
            self.faults_injected,
            self.shed,
            self.timeouts,
            self.retries,
            self.retries_exhausted,
            self.fallback_exits,
            self.breaker_trips,
            self.breaker_restores
        )
    }
}

/// Everything one simulation run measures.
#[derive(Debug, Clone, Serialize)]
pub struct RunMetrics {
    /// Configuration name (e.g. `NT_No_C6`).
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Measured window (post-warm-up).
    pub duration: Nanos,
    /// Core count.
    pub cores: usize,
    /// Aggregate C-state residencies across cores (time-weighted).
    pub residencies: ResidencyVector,
    /// Average per-core power over the window (the paper's `AvgP`).
    pub avg_core_power: MilliWatts,
    /// Server-side request latency.
    pub server_latency: LatencyStats,
    /// End-to-end latency (server + network round trip).
    pub end_to_end_latency: LatencyStats,
    /// Requests completed in the window.
    pub completed: u64,
    /// Offered load (requests/s).
    pub offered_qps: f64,
    /// Achieved throughput (requests/s).
    pub achieved_qps: f64,
    /// Idle-state entry counts per C-state.
    pub transitions: BTreeMap<CState, u64>,
    /// Snoop bursts serviced by idle cores.
    pub snoops_served: u64,
    /// Logical simulation events the engine processed over the whole
    /// run (warm-up included) — queue pops plus inline idle-skip chain
    /// steps. Dividing by wall-clock gives the events/sec engine
    /// throughput tracked in `BENCH_singlerun.json`; the count is
    /// identical with idle-skip on or off.
    pub events: u64,
    /// Fraction of busy time spent at Turbo frequency.
    pub turbo_fraction: Ratio,
    /// Average uncore power over the window.
    pub avg_uncore_power: MilliWatts,
    /// Package C-state residencies: (PC0, PC2, PC6).
    pub package_residency: [Ratio; 3],
    /// Mean-latency decomposition (transition / queue / service).
    pub breakdown: LatencyBreakdown,
    /// Telemetry headline numbers; `Some` only for traced runs (see
    /// `ServerSim::with_telemetry`).
    pub telemetry: Option<TelemetrySummary>,
    /// Per-request latency attribution (phase means, tail bucket, exit
    /// penalty by C-state); `Some` only for attributed runs (see
    /// `ServerSim::with_attribution`).
    pub attribution: Option<AttributionSummary>,
    /// Fault/overload/degradation counters (always present; all-zero for
    /// a clean run).
    pub degradation: DegradationStats,
}

impl RunMetrics {
    /// Residency of one state (zero if never entered).
    #[must_use]
    pub fn residency_of(&self, state: CState) -> Ratio {
        self.residencies.get(state)
    }

    /// Residency of one package state.
    #[must_use]
    pub fn package_residency_of(&self, state: PackageCState) -> Ratio {
        match state {
            PackageCState::Pc0 => self.package_residency[0],
            PackageCState::Pc2 => self.package_residency[1],
            PackageCState::Pc6 => self.package_residency[2],
        }
    }

    /// Total package power: all cores plus the uncore.
    #[must_use]
    pub fn package_power(&self) -> MilliWatts {
        self.avg_core_power * self.cores as f64 + self.avg_uncore_power
    }

    /// Mean CPU energy spent per completed request (cores + uncore),
    /// the energy-efficiency figure of merit for the datacenter analysis.
    #[must_use]
    pub fn energy_per_request(&self) -> aw_types::Joules {
        if self.completed == 0 {
            return aw_types::Joules::ZERO;
        }
        (self.package_power() * self.duration) / self.completed as f64
    }

    /// Total idle-state transitions per second of measured time.
    #[must_use]
    pub fn transitions_per_second(&self) -> f64 {
        let total: u64 = self.transitions.values().sum();
        if self.duration <= Nanos::ZERO {
            0.0
        } else {
            total as f64 / self.duration.as_secs()
        }
    }

    /// Power savings of this run relative to `baseline`, as a fraction of
    /// the baseline's average power.
    #[must_use]
    pub fn power_savings_vs(&self, baseline: &RunMetrics) -> Ratio {
        if baseline.avg_core_power <= MilliWatts::ZERO {
            return Ratio::ZERO;
        }
        Ratio::new(1.0 - self.avg_core_power / baseline.avg_core_power)
    }

    /// Fractional p99 latency change versus `baseline` (positive =
    /// degradation).
    #[must_use]
    pub fn tail_latency_delta_vs(&self, baseline: &RunMetrics) -> f64 {
        let b = baseline.server_latency.p99.as_nanos();
        if b <= 0.0 {
            return 0.0;
        }
        self.server_latency.p99.as_nanos() / b - 1.0
    }

    /// Fractional mean latency change versus `baseline` (positive =
    /// degradation).
    #[must_use]
    pub fn mean_latency_delta_vs(&self, baseline: &RunMetrics) -> f64 {
        let b = baseline.server_latency.mean.as_nanos();
        if b <= 0.0 {
            return 0.0;
        }
        self.server_latency.mean.as_nanos() / b - 1.0
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} / {}: {:.0} QPS offered, {:.0} achieved, AvgP={}",
            self.config, self.workload, self.offered_qps, self.achieved_qps, self.avg_core_power
        )?;
        writeln!(f, "  residency: {}", self.residencies)?;
        writeln!(f, "  latency:   {}", self.server_latency)?;
        write!(f, "  turbo: {}, snoops: {}", self.turbo_fraction, self.snoops_served)?;
        if let Some(t) = &self.telemetry {
            write!(f, "\n  telemetry: {t}")?;
        }
        if let Some(a) = &self.attribution {
            write!(f, "\n  {a}")?;
        }
        if !self.degradation.is_clean() {
            write!(f, "\n  degradation: {}", self.degradation)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics(power_mw: f64, p99_us: f64) -> RunMetrics {
        let mut s = SampleSet::new();
        for i in 1..=100 {
            s.record(p99_us * 1e3 * f64::from(i) / 100.0);
        }
        RunMetrics {
            config: "test".into(),
            workload: "w".into(),
            duration: Nanos::from_secs(1.0),
            cores: 2,
            residencies: ResidencyVector::from_percents([(CState::C0, 30.0), (CState::C1, 70.0)]),
            avg_core_power: MilliWatts::new(power_mw),
            server_latency: LatencyStats::from_samples(&mut s.clone()),
            end_to_end_latency: LatencyStats::from_samples(&mut s)
                .offset_by(Nanos::from_micros(117.0)),
            completed: 1000,
            offered_qps: 1000.0,
            achieved_qps: 1000.0,
            transitions: BTreeMap::from([(CState::C1, 500u64)]),
            snoops_served: 0,
            events: 4000,
            turbo_fraction: Ratio::ZERO,
            avg_uncore_power: MilliWatts::from_watts(10.0),
            package_residency: [Ratio::ONE, Ratio::ZERO, Ratio::ZERO],
            breakdown: LatencyBreakdown {
                transition: Nanos::from_micros(1.0),
                queue: Nanos::from_micros(2.0),
                service: Nanos::from_micros(4.0),
            },
            telemetry: None,
            attribution: None,
            degradation: DegradationStats::default(),
        }
    }

    #[test]
    fn latency_stats_ordering() {
        let m = sample_metrics(1000.0, 100.0);
        assert!(m.server_latency.p50 <= m.server_latency.p99);
        assert!(m.server_latency.p99 <= m.server_latency.p999);
        assert!(m.server_latency.p999 <= m.server_latency.max);
        assert!(m.server_latency.to_string().contains("p999="));
    }

    #[test]
    fn offset_by_matches_per_sample_offsetting() {
        // Deterministic offset: offsetting the summary equals
        // re-summarizing per-sample-offset data, for every statistic
        // including the new p999 — quantiles commute with adding a
        // constant.
        let mut raw = SampleSet::new();
        let mut shifted = SampleSet::new();
        let rtt = Nanos::from_micros(117.0);
        for i in 1..=2000 {
            let x = f64::from(i) * f64::from(i); // heavy-ish spread
            raw.record(x);
            shifted.record(x + rtt.as_nanos());
        }
        let summary_offset = LatencyStats::from_samples(&mut raw).offset_by(rtt);
        let per_sample = LatencyStats::from_samples(&mut shifted);
        for (a, b) in [
            (summary_offset.mean, per_sample.mean),
            (summary_offset.p50, per_sample.p50),
            (summary_offset.p99, per_sample.p99),
            (summary_offset.p999, per_sample.p999),
            (summary_offset.max, per_sample.max),
        ] {
            assert!((a.as_nanos() - b.as_nanos()).abs() < 1e-6, "{a} vs {b}");
        }
        assert_eq!(summary_offset.count, per_sample.count);

        // A *random* offset breaks the equivalence: Q(X + R) is not
        // Q(X) + mean(R) in general. This is why `offset_by` documents
        // the deterministic-RTT assumption.
        let mut jittered = SampleSet::new();
        for i in 1..=2000 {
            let x = f64::from(i) * f64::from(i);
            // Deterministic stand-in for jitter, anti-correlated with
            // rank: large samples get small offsets.
            let r = rtt.as_nanos() * 2.0 * f64::from(2000 - i) / 2000.0;
            jittered.record(x + r);
        }
        let per_sample_jittered = LatencyStats::from_samples(&mut jittered);
        let naive = summary_offset; // summary + constant mean(R) = rtt
        assert!(
            (per_sample_jittered.p99.as_nanos() - naive.p99.as_nanos()).abs() > 1.0,
            "random offset accidentally matched the constant-offset summary"
        );
    }

    #[test]
    fn end_to_end_adds_network() {
        let m = sample_metrics(1000.0, 100.0);
        let delta = m.end_to_end_latency.mean - m.server_latency.mean;
        assert_eq!(delta, Nanos::from_micros(117.0));
    }

    #[test]
    fn savings_vs_baseline() {
        let baseline = sample_metrics(2000.0, 100.0);
        let aw = sample_metrics(1200.0, 101.0);
        let s = aw.power_savings_vs(&baseline);
        assert!((s.as_percent() - 40.0).abs() < 1e-9);
        assert!(aw.tail_latency_delta_vs(&baseline) > 0.0);
        assert!(aw.tail_latency_delta_vs(&baseline) < 0.02);
    }

    #[test]
    fn transitions_per_second() {
        let m = sample_metrics(1000.0, 100.0);
        assert!((m.transitions_per_second() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_power_yields_zero_savings() {
        let baseline = sample_metrics(0.0, 100.0);
        let m = sample_metrics(1000.0, 100.0);
        assert_eq!(m.power_savings_vs(&baseline), Ratio::ZERO);
    }

    #[test]
    fn empty_samples_are_explicitly_marked() {
        let mut s = SampleSet::new();
        let l = LatencyStats::from_samples(&mut s);
        assert_eq!(l.mean, Nanos::ZERO);
        assert_eq!(l.p99, Nanos::ZERO);
        assert!(l.is_empty());
        assert_eq!(l.to_string(), "no samples");
        // Offsetting an empty summary must not fabricate latencies.
        let shifted = l.offset_by(Nanos::from_micros(100.0));
        assert!(shifted.is_empty());
        assert_eq!(shifted.mean, Nanos::ZERO);
    }

    #[test]
    fn populated_samples_are_not_empty() {
        let m = sample_metrics(1000.0, 100.0);
        assert!(!m.server_latency.is_empty());
        assert_eq!(m.server_latency.count, 100);
        assert!(m.server_latency.to_string().contains("mean="));
    }

    #[test]
    fn breakdown_totals_and_shares() {
        let m = sample_metrics(1000.0, 100.0);
        assert_eq!(m.breakdown.total(), Nanos::from_micros(7.0));
        assert!((m.breakdown.transition_share().get() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn package_power_sums_cores_and_uncore() {
        let m = sample_metrics(1000.0, 100.0);
        assert_eq!(m.package_power(), MilliWatts::from_watts(12.0));
        assert_eq!(m.package_residency_of(PackageCState::Pc0), Ratio::ONE);
    }

    #[test]
    fn energy_per_request() {
        let m = sample_metrics(1000.0, 100.0);
        // 12 W × 1 s / 1000 requests = 12 mJ per request.
        assert!((m.energy_per_request().as_joules() - 0.012).abs() < 1e-9);
        let mut empty = sample_metrics(1000.0, 100.0);
        empty.completed = 0;
        assert_eq!(empty.energy_per_request(), aw_types::Joules::ZERO);
    }

    #[test]
    fn display_is_informative() {
        let m = sample_metrics(1000.0, 100.0);
        let text = m.to_string();
        assert!(text.contains("QPS"));
        assert!(text.contains("residency"));
    }

    #[test]
    fn degradation_display_distinguishes_clean_runs() {
        let clean = DegradationStats::default();
        assert!(clean.is_clean());
        assert!(clean.to_string().contains("clean run"));

        let mut m = sample_metrics(1000.0, 100.0);
        assert!(!m.to_string().contains("degradation"), "clean run hides the section");
        m.degradation.shed = 3;
        m.degradation.retries = 2;
        assert!(!m.degradation.is_clean());
        assert!(m.to_string().contains("degradation: "));
        assert!(m.degradation.to_string().contains("shed=3"));
    }
}
