//! The unified simulation entry point: [`SimBuilder`] → [`RunOutput`].
//!
//! Historically [`ServerSim`] grew three overlapping run methods
//! (`run`, `run_traced`, `run_full`, removed in 0.7) plus ad-hoc
//! `with_*` toggles; that shape does not compose when a fleet simulator
//! needs to stamp out N identically configured servers. [`SimBuilder`]
//! collapses all of it into one declarative description of a run —
//! configuration, workload, seed, fault plan, telemetry, attribution,
//! SLO target, and optional latency-sample or idle-interval capture —
//! and one way to execute it: [`SimBuilder::run`], which always returns
//! the full [`RunOutput`].
//!
//! The builder is [`Clone`], so a fleet (or any sweep) can hold one
//! prototype and stamp out per-server instances, varying only the seed
//! and the offered load.
//!
//! # Examples
//!
//! ```
//! use aw_server::{ServerConfig, SimBuilder, WorkloadSpec};
//! use aw_cstates::NamedConfig;
//! use aw_types::Nanos;
//!
//! let workload = WorkloadSpec::poisson("toy", 50_000.0, Nanos::from_micros(3.0), 0.8);
//! let config = ServerConfig::new(4, NamedConfig::Aw)
//!     .with_duration(Nanos::from_millis(50.0));
//!
//! let out = SimBuilder::new(config, workload, 42)
//!     .with_attribution(Nanos::from_millis(5.0))
//!     .with_slo(Nanos::from_micros(500.0))
//!     .run();
//!
//! assert!(out.failure.is_none());
//! assert!(out.attribution.is_some());
//! assert!(out.slo.is_some());
//! assert!(out.metrics.completed > 0);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use aw_faults::FaultPlan;
use aw_telemetry::SloMonitor;
use aw_types::Nanos;

use crate::config::ServerConfig;
use crate::sim::{RunOutput, ServerSim};
use crate::workload::WorkloadSpec;

/// Process-wide override that disables the analytic idle-skip fast path
/// for every subsequently constructed [`SimBuilder`] (the CLI's
/// `--no-idle-skip`). Mirrors `aw_exec::set_default_jobs`: experiments
/// construct their builders internally, so a debug knob that must reach
/// all of them needs a process default rather than N plumbed
/// parameters. Builders snapshot the default at [`SimBuilder::new`]
/// time; [`SimBuilder::without_idle_skip`] still forces it off
/// per-builder.
static IDLE_SKIP_DISABLED: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide idle-skip default picked up by every
/// [`SimBuilder::new`] from now on (`false` = force the classic stepped
/// engine). Both settings are byte-identical by contract; this exists so
/// the equivalence stays checkable end-to-end.
pub fn set_default_idle_skip(on: bool) {
    IDLE_SKIP_DISABLED.store(!on, Ordering::SeqCst);
}

/// The current process-wide idle-skip default (`true` unless
/// [`set_default_idle_skip`]`(false)` was called).
#[must_use]
pub fn default_idle_skip() -> bool {
    !IDLE_SKIP_DISABLED.load(Ordering::SeqCst)
}

/// A declarative description of one simulation run.
///
/// Construct with [`SimBuilder::new`], chain the optional
/// instrumentation, and execute with [`SimBuilder::run`]. Every knob is
/// orthogonal; the output carries `Some` for exactly the instrumentation
/// that was requested.
#[derive(Debug, Clone)]
pub struct SimBuilder {
    config: ServerConfig,
    workload: WorkloadSpec,
    seed: u64,
    faults: Option<FaultPlan>,
    telemetry_limit: Option<usize>,
    attribution_window: Option<Nanos>,
    slo_p99: Option<Nanos>,
    latency_samples: bool,
    idle_analysis: bool,
    idle_skip: bool,
}

impl SimBuilder {
    /// Describes a plain run of `workload` through `config` with `seed`.
    #[must_use]
    pub fn new(config: ServerConfig, workload: WorkloadSpec, seed: u64) -> Self {
        SimBuilder {
            config,
            workload,
            seed,
            faults: None,
            telemetry_limit: None,
            attribution_window: None,
            slo_p99: None,
            latency_samples: false,
            idle_analysis: false,
            idle_skip: default_idle_skip(),
        }
    }

    /// Disables the analytic idle-skip fast path, forcing every event
    /// through the calendar queue (the classic stepped engine). The two
    /// modes are byte-identical by construction — this debug knob (the
    /// CLI's `--no-idle-skip`) exists so that equivalence stays
    /// checkable end-to-end; there is no reason to use it for results.
    #[must_use]
    pub fn without_idle_skip(mut self) -> Self {
        self.idle_skip = false;
        self
    }

    /// Attaches a deterministic fault-injection plan. A plan whose rates
    /// are all zero leaves the run bit-identical to one without a plan
    /// (common random numbers: fault draws live on their own streams).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables telemetry: structured trace events (bounded to
    /// `trace_limit`, oldest evicted first) plus the metrics registry.
    /// The output's `telemetry` field carries the report.
    ///
    /// # Panics
    ///
    /// [`SimBuilder::run`] panics if `trace_limit` is zero.
    #[must_use]
    pub fn with_telemetry(mut self, trace_limit: usize) -> Self {
        self.telemetry_limit = Some(trace_limit);
        self
    }

    /// Enables per-request latency attribution with `window`-sized
    /// timeline buckets. The output's `attribution` field carries the
    /// report.
    ///
    /// # Panics
    ///
    /// [`SimBuilder::run`] panics if `window` is not strictly positive.
    #[must_use]
    pub fn with_attribution(mut self, window: Nanos) -> Self {
        self.attribution_window = Some(window);
        self
    }

    /// Sets a per-window p99 SLO target. Implies attribution (the SLO is
    /// evaluated over the attribution timeline); if no window was chosen
    /// with [`SimBuilder::with_attribution`], a default of ~50 windows
    /// per run (never finer than 1 ms) is used. The output's `slo` field
    /// carries the verdict.
    #[must_use]
    pub fn with_slo(mut self, target_p99: Nanos) -> Self {
        self.slo_p99 = Some(target_p99);
        self
    }

    /// Captures every measured (post-warm-up, non-tick) request latency
    /// in the output's `latency_samples`, in completion order. Pure
    /// observation: the run is bit-identical with or without it. This is
    /// what lets a fleet aggregator compute *exact* cross-server
    /// quantiles instead of averaging per-server percentiles.
    #[must_use]
    pub fn with_latency_samples(mut self) -> Self {
        self.latency_samples = true;
        self
    }

    /// Captures every completed idle round trip (core, start, duration,
    /// chosen state, governor prediction) in the output's
    /// `idle_intervals`, in wake order. Pure observation: the run is
    /// bit-identical with or without it. Feed the records to `aw-sleep`
    /// for idle-period distributions, the governor audit, and the
    /// achieved-vs-achievable opportunity ledger.
    #[must_use]
    pub fn with_idle_analysis(mut self) -> Self {
        self.idle_analysis = true;
        self
    }

    /// The configuration this builder will run.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The workload this builder will run.
    #[must_use]
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// The RNG seed this builder will run with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the seed (fleet stamping: same prototype, one CRN stream
    /// per server).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the workload (fleet stamping: same prototype, per-server
    /// load share).
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// The default attribution window for a run of `duration`: ~50
    /// windows, but never finer than 1 ms (sub-millisecond windows hold
    /// too few completions for a meaningful windowed p99).
    #[must_use]
    pub fn default_window(duration: Nanos) -> Nanos {
        Nanos::from_millis((duration.as_nanos() / 1e6 / 50.0).max(1.0))
    }

    /// Executes the run and returns everything it produced. An
    /// invariant violation does **not** panic here: it is handed back
    /// as [`RunOutput::failure`] (use [`RunOutput::into_metrics`] for
    /// the panic-on-failure contract).
    #[must_use]
    pub fn run(self) -> RunOutput {
        self.execute(None)
    }

    /// Executes the run while pushing every closed attribution window to
    /// `observer` as it becomes final (see
    /// [`aw_telemetry::WindowObserver`]). Implies attribution: if no
    /// window was chosen with [`SimBuilder::with_attribution`], the
    /// [`SimBuilder::default_window`] is used. Streaming is pure
    /// observation — the returned [`RunOutput`] (and its timeline CSV)
    /// is byte-identical to [`SimBuilder::run`]'s.
    ///
    /// Pair with [`aw_telemetry::window_stream`] to consume the windows
    /// on another thread, or pass any collector (e.g.
    /// [`aw_telemetry::TimelineCollector`]) to consume them in-process.
    #[must_use]
    pub fn run_streaming(self, observer: Box<dyn aw_telemetry::WindowObserver>) -> RunOutput {
        self.execute(Some(observer))
    }

    /// The single execution path behind [`SimBuilder::run`] and
    /// [`SimBuilder::run_streaming`].
    fn execute(self, observer: Option<Box<dyn aw_telemetry::WindowObserver>>) -> RunOutput {
        let slo_target = self.slo_p99;
        let attribution_window = self.attribution_window.or_else(|| {
            (slo_target.is_some() || observer.is_some())
                .then(|| Self::default_window(self.config.duration))
        });
        let mut sim = ServerSim::new(self.config, self.workload, self.seed);
        sim.set_idle_skip(self.idle_skip);
        if let Some(plan) = self.faults {
            sim.set_faults(plan);
        }
        if let Some(limit) = self.telemetry_limit {
            sim.set_telemetry(limit);
        }
        if let Some(window) = attribution_window {
            sim.set_attribution(window);
        }
        if self.latency_samples {
            sim.set_latency_samples();
        }
        if self.idle_analysis {
            sim.set_idle_analysis();
        }
        if let Some(obs) = observer {
            sim.set_window_observer(obs, slo_target);
        }
        let mut out = sim.run_to_output();
        if let (Some(target), Some(report)) = (slo_target, out.attribution.as_ref()) {
            out.slo = Some(SloMonitor::new(target).evaluate(&report.timeline));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_cstates::NamedConfig;
    use aw_faults::FaultSpec;

    fn builder(named: NamedConfig, qps: f64, seed: u64) -> SimBuilder {
        let cfg = ServerConfig::new(4, named).with_duration(Nanos::from_millis(60.0));
        let w = WorkloadSpec::poisson("builder", qps, Nanos::from_micros(3.0), 0.8);
        SimBuilder::new(cfg, w, seed)
    }

    #[test]
    fn plain_runs_are_deterministic() {
        let a = builder(NamedConfig::Aw, 80_000.0, 7).run();
        let b = builder(NamedConfig::Aw, 80_000.0, 7).run();
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let spec = FaultSpec::parse("seed=3,wake-fail=0.2,lost-wake=0.05").unwrap();
        let run = || {
            builder(NamedConfig::Aw, 60_000.0, 7).with_faults(FaultPlan::new(spec.clone())).run()
        };
        let a = run();
        let b = run();
        assert!(a.metrics.degradation.faults_injected > 0);
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
    }

    #[test]
    fn idle_analysis_is_pure_observation() {
        let plain = builder(NamedConfig::Aw, 90_000.0, 11).run();
        let observed = builder(NamedConfig::Aw, 90_000.0, 11).with_idle_analysis().run();
        assert_eq!(
            format!("{:?}", plain.metrics),
            format!("{:?}", observed.metrics),
            "idle capture perturbed the run"
        );
        let intervals = observed.idle_intervals.expect("intervals captured");
        assert!(!intervals.is_empty());
        // Every interval covers at least its state's transition budget,
        // and measured intervals start inside the measured window.
        for iv in &intervals {
            assert!(iv.duration >= Nanos::ZERO, "{iv:?}");
            assert!(iv.core < 4, "{iv:?}");
            if iv.measured {
                assert!(iv.start >= Nanos::ZERO);
            }
        }
        // The governor-observed idle stream and the captured one are the
        // same: a menu governor run records a prediction from the second
        // interval of each core onwards.
        assert!(intervals.iter().any(|iv| iv.predicted.is_some()));
        assert!(plain.idle_intervals.is_none());
    }

    #[test]
    fn slo_implies_attribution_with_default_window() {
        let out =
            builder(NamedConfig::Baseline, 100_000.0, 9).with_slo(Nanos::from_micros(500.0)).run();
        let attribution = out.attribution.expect("slo implies attribution");
        // 60 ms duration / 50 windows = 1.2 ms (above the 1 ms floor).
        assert_eq!(attribution.timeline.window_duration(), Nanos::from_millis(1.2));
        let slo = out.slo.expect("slo verdict present");
        assert!(slo.windows_total > 0);
    }

    #[test]
    fn explicit_window_wins_over_slo_default() {
        let out = builder(NamedConfig::Baseline, 100_000.0, 9)
            .with_attribution(Nanos::from_millis(5.0))
            .with_slo(Nanos::from_micros(500.0))
            .run();
        let attribution = out.attribution.expect("attribution on");
        assert_eq!(attribution.timeline.window_duration(), Nanos::from_millis(5.0));
    }

    #[test]
    fn latency_samples_are_pure_observation() {
        let plain = builder(NamedConfig::Aw, 90_000.0, 11).run();
        let sampled = builder(NamedConfig::Aw, 90_000.0, 11).with_latency_samples().run();
        assert_eq!(
            format!("{:?}", plain.metrics),
            format!("{:?}", sampled.metrics),
            "sample capture perturbed the run"
        );
        let samples = sampled.latency_samples.expect("samples captured");
        assert_eq!(samples.len() as u64, sampled.metrics.completed);
        // The captured samples reproduce the reported mean exactly.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - sampled.metrics.server_latency.mean.as_nanos()).abs() < 1e-6);
        assert!(plain.latency_samples.is_none());
    }

    #[test]
    fn default_window_is_clamped() {
        assert_eq!(SimBuilder::default_window(Nanos::from_millis(400.0)), Nanos::from_millis(8.0));
        assert_eq!(SimBuilder::default_window(Nanos::from_millis(10.0)), Nanos::from_millis(1.0));
    }

    #[test]
    fn stamping_helpers_replace_seed_and_workload() {
        let proto = builder(NamedConfig::Aw, 50_000.0, 1);
        let stamped = proto.clone().with_seed(99).with_workload(WorkloadSpec::poisson(
            "half",
            25_000.0,
            Nanos::from_micros(3.0),
            0.8,
        ));
        assert_eq!(stamped.seed(), 99);
        assert!((stamped.workload().offered_qps() - 25_000.0).abs() < 1e-6);
        assert_eq!(proto.seed(), 1);
    }

    #[test]
    fn streamed_windows_rebuild_the_batch_timeline_byte_for_byte() {
        use aw_telemetry::{StreamWindow, TimelineCollector, WindowObserver};

        let window = Nanos::from_millis(5.0);
        let batch = builder(NamedConfig::Aw, 90_000.0, 13).with_attribution(window).run();
        let batch_csv = batch.attribution.as_ref().expect("attribution on").timeline.to_csv();

        /// Forwards to a [`TimelineCollector`] and checks the stream
        /// contract on the way through: in-order, gap-free, finished
        /// exactly once.
        struct Checked {
            collector: TimelineCollector,
            next: usize,
            finished: bool,
        }
        impl WindowObserver for Checked {
            fn on_window(&mut self, w: &StreamWindow) {
                assert_eq!(w.index, self.next, "stream skipped or repeated a window");
                assert!(!self.finished, "window after finish");
                self.next += 1;
                self.collector.on_window(w);
            }
            fn on_finish(&mut self) {
                self.finished = true;
            }
        }

        let streamed = builder(NamedConfig::Aw, 90_000.0, 13)
            .with_attribution(window)
            .run_streaming(Box::new(Checked {
                collector: TimelineCollector::new(window),
                next: 0,
                finished: false,
            }));
        // Streaming is pure observation: the batch output is unchanged.
        assert_eq!(
            format!("{:?}", batch.metrics),
            format!("{:?}", streamed.metrics),
            "streaming perturbed the run"
        );
        assert_eq!(
            batch_csv,
            streamed.attribution.as_ref().expect("attribution on").timeline.to_csv(),
            "streaming changed the batch timeline itself"
        );
    }

    #[test]
    fn streaming_delivers_windows_before_the_run_ends() {
        use aw_telemetry::window_stream;

        let window = Nanos::from_millis(2.0);
        let (tx, mut rx) = window_stream(256);
        let handle = std::thread::spawn(move || {
            builder(NamedConfig::Aw, 90_000.0, 17)
                .with_attribution(window)
                .with_slo(Nanos::from_micros(500.0))
                .run_streaming(Box::new(tx))
        });
        let mut collector = aw_telemetry::TimelineCollector::new(window);
        let mut seen = 0usize;
        while let Some(w) = rx.recv() {
            assert_eq!(w.index, seen);
            assert_eq!(w.duration, window);
            assert!(w.slo_violated.is_some(), "SLO target set, verdict missing");
            aw_telemetry::WindowObserver::on_window(&mut collector, &w);
            seen += 1;
        }
        let out = handle.join().expect("sim thread");
        assert!(seen > 0, "no windows streamed");
        assert_eq!(
            collector.timeline().to_csv(),
            out.attribution.as_ref().expect("attribution on").timeline.to_csv()
        );
    }

    #[test]
    fn failure_is_returned_not_panicked() {
        let out = builder(NamedConfig::Baseline, 50_000.0, 3).run();
        assert!(out.failure.is_none(), "clean run must not report a failure");
        // into_metrics on a clean run is the old `run` contract.
        let _ = out.into_metrics();
    }
}
