//! Per-core state: run queue, C-state life cycle, energy and residency
//! accounting.

use std::collections::VecDeque;
use std::fmt;

use aw_cstates::{CState, IdleGovernor};
use aw_sim::{EnergyMeter, ResidencyTracker};
use aw_types::{Joules, MilliWatts, Nanos};

use crate::thermal::ThermalModel;

/// The life-cycle state of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreState {
    /// Executing a request.
    Active,
    /// Transitioning into `target` (entry latency elapsing).
    Entering {
        /// The idle state being entered.
        target: CState,
    },
    /// Resident in an idle state.
    Idle {
        /// The idle state occupied.
        state: CState,
    },
    /// Transitioning back to C0 (exit latency elapsing).
    Waking {
        /// The idle state being left.
        from: CState,
    },
}

impl CoreState {
    /// The C-state this life-cycle state is accounted to for residency:
    /// transitions burn near-active power and count as C0 (they are not
    /// useful work, but they are not low-power residency either).
    #[must_use]
    pub fn accounting_state(self) -> CState {
        match self {
            CoreState::Active | CoreState::Entering { .. } | CoreState::Waking { .. } => CState::C0,
            CoreState::Idle { state } => state,
        }
    }
}

/// One queued request: its arrival time and sampled service demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// When the request arrived at the server.
    pub arrival: Nanos,
    /// Service demand at base frequency.
    pub service: Nanos,
    /// The idle-state exit latency this request personally waited for
    /// (non-zero only for the request whose arrival triggered the wake).
    pub wake_penalty: Nanos,
    /// The idle state whose exit charged [`QueuedRequest::wake_penalty`]
    /// (`None` when no penalty was charged) — attribution needs to know
    /// *which* C-state the tail paid for.
    pub wake_state: Option<CState>,
    /// `true` for OS timer-tick kernel work (excluded from client
    /// latency/throughput metrics).
    pub is_tick: bool,
    /// 1-based submission attempt (grows when a shed or timed-out
    /// request is retried by the client).
    pub attempt: u32,
}

/// A simulated core: queue, state machine bookkeeping, governor, thermal
/// bank, and meters.
pub struct SimCore {
    /// Core index.
    pub id: usize,
    /// Current life-cycle state.
    pub state: CoreState,
    /// FIFO run queue.
    pub queue: VecDeque<QueuedRequest>,
    /// The request currently being served (popped from the queue).
    pub in_flight: Option<QueuedRequest>,
    /// When the in-flight service began.
    pub serve_start: Nanos,
    /// Residency tracker over accounting C-states.
    pub tracker: ResidencyTracker<CState>,
    /// Energy integrator.
    pub meter: EnergyMeter,
    /// Extra energy from snoop servicing while idle.
    pub snoop_energy: Joules,
    /// Hidden energy from idle-state transitions (in-rush, clock
    /// restart) not captured by the piecewise-constant state powers.
    pub transition_energy: Joules,
    /// Power drawn since the last meter advance.
    pub current_power: MilliWatts,
    /// The idle governor instance.
    pub governor: Box<dyn IdleGovernor>,
    /// Thermal-capacitance bank for Turbo.
    pub thermal: ThermalModel,
    /// When the current idle period began (entry start).
    pub idle_since: Nanos,
    /// Generation counter invalidating stale scheduled events.
    pub generation: u64,
    /// Idle-state entries since the last metric reset, as `(state,
    /// count)` pairs in first-entered order. At most one pair per
    /// C-state, so a linear scan is cheaper than a map on the per-entry
    /// hot path.
    pub entries: Vec<(CState, u64)>,
    /// Busy time spent at Turbo frequency since the last reset.
    pub turbo_busy: Nanos,
    /// Total busy time since the last reset.
    pub total_busy: Nanos,
    /// Snoop bursts serviced since the last reset.
    pub snoops_served: u64,
    /// `true` while the in-flight service runs at Turbo frequency.
    pub serving_at_turbo: bool,
}

impl SimCore {
    /// Creates an active, empty core at time zero.
    #[must_use]
    pub fn new(id: usize, governor: Box<dyn IdleGovernor>) -> Self {
        SimCore {
            id,
            state: CoreState::Active,
            queue: VecDeque::new(),
            in_flight: None,
            serve_start: Nanos::ZERO,
            tracker: ResidencyTracker::new(CState::C0, Nanos::ZERO),
            meter: EnergyMeter::new(Nanos::ZERO),
            snoop_energy: Joules::ZERO,
            transition_energy: Joules::ZERO,
            current_power: MilliWatts::ZERO,
            governor,
            thermal: ThermalModel::skylake(),
            idle_since: Nanos::ZERO,
            generation: 0,
            entries: Vec::new(),
            turbo_busy: Nanos::ZERO,
            total_busy: Nanos::ZERO,
            snoops_served: 0,
            serving_at_turbo: false,
        }
    }

    /// Advances meters to `now` at the standing power level, then switches
    /// the standing power to `next_power` and bumps the event generation.
    pub fn switch_power(&mut self, now: Nanos, next_power: MilliWatts) {
        let dt = now - self.meter.now();
        self.thermal.advance(self.current_power, dt);
        self.meter.advance(self.current_power, now);
        self.current_power = next_power;
        self.generation += 1;
    }

    /// Moves to a new life-cycle state at `now`, recording residency.
    pub fn set_state(&mut self, now: Nanos, state: CoreState) {
        self.tracker.transition(state.accounting_state(), now);
        self.state = state;
    }

    /// Resets metric accumulators at the warm-up boundary, preserving
    /// learned governor state and the current life-cycle state.
    pub fn reset_metrics(&mut self, now: Nanos) {
        // Close out the pre-warm-up interval, then restart the meters.
        // Deliberately does NOT bump `generation`: pending transition
        // events scheduled before the warm-up boundary must stay valid.
        let dt = now - self.meter.now();
        self.thermal.advance(self.current_power, dt);
        self.meter = EnergyMeter::new(now);
        self.snoop_energy = Joules::ZERO;
        self.transition_energy = Joules::ZERO;
        self.tracker = ResidencyTracker::new(self.state.accounting_state(), now);
        self.entries.clear();
        self.turbo_busy = Nanos::ZERO;
        self.total_busy = Nanos::ZERO;
        self.snoops_served = 0;
    }

    /// Counts one entry into idle state `state`.
    pub fn record_entry(&mut self, state: CState) {
        match self.entries.iter_mut().find(|(s, _)| *s == state) {
            Some((_, n)) => *n += 1,
            None => self.entries.push((state, 1)),
        }
    }

    /// `true` if the core has no queued or in-flight work.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && !matches!(self.state, CoreState::Active)
    }

    /// Queue depth including the in-flight request.
    #[must_use]
    pub fn load(&self) -> usize {
        self.queue.len() + usize::from(matches!(self.state, CoreState::Active))
    }
}

impl fmt::Debug for SimCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCore")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("queue", &self.queue.len())
            .field("generation", &self.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_cstates::MenuGovernor;

    fn core() -> SimCore {
        SimCore::new(0, Box::new(MenuGovernor::new()))
    }

    #[test]
    fn accounting_maps_transitions_to_c0() {
        assert_eq!(CoreState::Active.accounting_state(), CState::C0);
        assert_eq!(CoreState::Entering { target: CState::C6 }.accounting_state(), CState::C0);
        assert_eq!(CoreState::Waking { from: CState::C1 }.accounting_state(), CState::C0);
        assert_eq!(CoreState::Idle { state: CState::C6A }.accounting_state(), CState::C6A);
    }

    #[test]
    fn switch_power_integrates_energy() {
        let mut c = core();
        c.current_power = MilliWatts::from_watts(4.0);
        c.switch_power(Nanos::from_secs(1.0), MilliWatts::from_watts(1.0));
        assert!((c.meter.energy().as_joules() - 4.0).abs() < 1e-9);
        assert_eq!(c.current_power, MilliWatts::from_watts(1.0));
    }

    #[test]
    fn generation_bumps_on_switch() {
        let mut c = core();
        let g = c.generation;
        c.switch_power(Nanos::new(1.0), MilliWatts::ZERO);
        assert_eq!(c.generation, g + 1);
    }

    #[test]
    fn state_changes_track_residency() {
        let mut c = core();
        c.set_state(Nanos::from_micros(10.0), CoreState::Idle { state: CState::C1 });
        c.set_state(Nanos::from_micros(30.0), CoreState::Active);
        c.tracker.finish(Nanos::from_micros(40.0));
        assert_eq!(c.tracker.time_in(&CState::C1), Nanos::from_micros(20.0));
        assert_eq!(c.tracker.time_in(&CState::C0), Nanos::from_micros(20.0));
    }

    #[test]
    fn reset_metrics_preserves_state() {
        let mut c = core();
        c.current_power = MilliWatts::from_watts(4.0);
        c.set_state(Nanos::from_micros(5.0), CoreState::Idle { state: CState::C1 });
        c.reset_metrics(Nanos::from_micros(100.0));
        assert_eq!(c.meter.energy(), Joules::ZERO);
        assert_eq!(*c.tracker.current(), CState::C1);
        assert!(matches!(c.state, CoreState::Idle { state: CState::C1 }));
    }

    #[test]
    fn quiescence_and_load() {
        let mut c = core();
        assert_eq!(c.load(), 1); // starts Active
        assert!(!c.is_quiescent());
        c.set_state(Nanos::new(1.0), CoreState::Idle { state: CState::C1 });
        assert!(c.is_quiescent());
        c.queue.push_back(QueuedRequest {
            arrival: Nanos::new(2.0),
            service: Nanos::from_micros(1.0),
            wake_penalty: Nanos::ZERO,
            wake_state: None,
            is_tick: false,
            attempt: 1,
        });
        assert!(!c.is_quiescent());
        assert_eq!(c.load(), 1);
    }
}
