//! Package-level (uncore) idle-state tracking.
//!
//! The paper scopes itself to *core* C-states and notes (footnote 1)
//! that package C-states (PC2/PC6…) save additional uncore power but
//! need *every* core idle — and deep package states additionally need
//! every core in C6, because a core with live caches (C1…C6A) still
//! requires the coherence fabric powered. That is exactly why AW's C6A
//! keeps the package out of PC6: its caches stay coherent. The follow-up
//! AgilePkgC paper (ref [9]) attacks that limitation; this module models
//! the baseline package behaviour so the simulator's package power is
//! honest about it.
//!
//! The data types ([`PackageCState`], [`UncorePower`], [`CcxSpec`])
//! live in `aw-hw` so every [`aw_hw::HardwareModel`] carries its own
//! uncore calibration; this module hosts the state machine that
//! integrates them over a run. On core-complex parts (Zen 2) the model
//! additionally credits the L3 slice of every fully-sleeping CCX —
//! and, mirroring the package-level story, cores idling in C6A hold
//! their CCX's L3 awake because their caches stay coherent.

use aw_sim::{EnergyMeter, ResidencyTracker};
use aw_types::{Joules, MilliWatts, Nanos, Ratio};

pub use aw_hw::{PackageCState, UncorePower};

use aw_hw::{CcxSpec, HardwareModel};

/// Tracks the package idle state from per-core occupancy counts and
/// integrates uncore energy.
///
/// The server simulator reports every change in the number of
/// idle/flushed cores; the model derives the package state:
///
/// * any core busy → PC0;
/// * all cores idle → PC2;
/// * all cores idle **and** all in C6 → PC6.
///
/// # Examples
///
/// ```
/// use aw_server::{PackageCState, UncoreModel};
/// use aw_types::Nanos;
///
/// let mut u = UncoreModel::skylake(4, Nanos::ZERO);
/// assert_eq!(u.state(), PackageCState::Pc0);
///
/// // All four cores go idle, two of them into C6:
/// u.update(4, 2, Nanos::from_micros(10.0));
/// assert_eq!(u.state(), PackageCState::Pc2);
///
/// // The other two reach C6 as well:
/// u.update(4, 4, Nanos::from_micros(50.0));
/// assert_eq!(u.state(), PackageCState::Pc6);
/// ```
#[derive(Debug, Clone)]
pub struct UncoreModel {
    cores: usize,
    power: UncorePower,
    ccx: Option<CcxSpec>,
    state: PackageCState,
    /// CCXes whose cores are all in legacy C6 (their L3 slice asleep);
    /// always zero without a [`CcxSpec`].
    asleep_ccx: usize,
    meter: EnergyMeter,
    tracker: ResidencyTracker<PackageCState>,
}

impl UncoreModel {
    /// Creates the model for a `cores`-core package with Skylake-like
    /// uncore powers.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn skylake(cores: usize, start: Nanos) -> Self {
        UncoreModel::new(cores, UncorePower::skylake(), start)
    }

    /// Creates the model with explicit power levels.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: usize, power: UncorePower, start: Nanos) -> Self {
        assert!(cores > 0, "need at least one core");
        UncoreModel {
            cores,
            power,
            ccx: None,
            state: PackageCState::Pc0,
            asleep_ccx: 0,
            meter: EnergyMeter::new(start),
            tracker: ResidencyTracker::new(PackageCState::Pc0, start),
        }
    }

    /// Creates the model from a hardware model's uncore calibration,
    /// including its CCX topology if it has one.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn for_hw(hw: &HardwareModel, cores: usize, start: Nanos) -> Self {
        let mut m = UncoreModel::new(cores, hw.uncore, start);
        m.ccx = hw.ccx;
        m
    }

    /// Current package state.
    #[must_use]
    pub fn state(&self) -> PackageCState {
        self.state
    }

    /// Power drawn right now: the package-state level, minus the L3
    /// credit of every fully-sleeping CCX while the package itself is
    /// still above PC6 (floored at the PC6 level — a package can't
    /// beat all-slices-plus-fabric-asleep by sleeping slices alone).
    fn current_power(&self) -> MilliWatts {
        let base = self.power.of(self.state);
        match (&self.ccx, self.state) {
            (Some(ccx), PackageCState::Pc0 | PackageCState::Pc2) if self.asleep_ccx > 0 => {
                (base - ccx.l3_sleep * self.asleep_ccx as f64).max(self.power.pc6)
            }
            _ => base,
        }
    }

    /// Reports the occupancy at time `now`: `idle_cores` cores resident
    /// in any idle state, of which `c6_cores` are in legacy C6.
    ///
    /// # Panics
    ///
    /// Panics if the counts are inconsistent with the core count.
    pub fn update(&mut self, idle_cores: usize, c6_cores: usize, now: Nanos) {
        self.update_ccx(idle_cores, c6_cores, 0, now);
    }

    /// As [`UncoreModel::update`], additionally reporting how many
    /// CCXes currently have *all* their cores in legacy C6 (only
    /// meaningful on models with a [`CcxSpec`]; ignored otherwise).
    ///
    /// # Panics
    ///
    /// Panics if the counts are inconsistent with the core count.
    pub fn update_ccx(
        &mut self,
        idle_cores: usize,
        c6_cores: usize,
        asleep_ccx: usize,
        now: Nanos,
    ) {
        assert!(idle_cores <= self.cores, "idle count exceeds core count");
        assert!(c6_cores <= idle_cores, "C6 cores must be idle cores");
        let next = if idle_cores < self.cores {
            PackageCState::Pc0
        } else if c6_cores == self.cores {
            PackageCState::Pc6
        } else {
            PackageCState::Pc2
        };
        let asleep_ccx = if self.ccx.is_some() { asleep_ccx } else { 0 };
        if next != self.state || asleep_ccx != self.asleep_ccx {
            self.meter.advance(self.current_power(), now);
            if next != self.state {
                self.tracker.transition(next, now);
            }
            self.state = next;
            self.asleep_ccx = asleep_ccx;
        }
    }

    /// Closes the observation window and returns accumulated energy.
    pub fn finish(&mut self, end: Nanos) -> Joules {
        self.meter.advance(self.current_power(), end);
        self.tracker.finish(end);
        self.meter.energy()
    }

    /// Restarts energy/residency accounting at `now`, keeping the
    /// current state (warm-up boundary).
    pub fn reset_metrics(&mut self, now: Nanos) {
        self.meter = EnergyMeter::new(now);
        self.tracker = ResidencyTracker::new(self.state, now);
    }

    /// Fraction of observed time in `state`.
    #[must_use]
    pub fn residency(&self, state: PackageCState) -> Ratio {
        self.tracker.residency(&state)
    }

    /// Uncore energy accumulated so far (excludes the open interval).
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.meter.energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_pc0() {
        let u = UncoreModel::skylake(2, Nanos::ZERO);
        assert_eq!(u.state(), PackageCState::Pc0);
    }

    #[test]
    fn all_idle_enters_pc2() {
        let mut u = UncoreModel::skylake(2, Nanos::ZERO);
        u.update(1, 0, Nanos::new(10.0));
        assert_eq!(u.state(), PackageCState::Pc0);
        u.update(2, 0, Nanos::new(20.0));
        assert_eq!(u.state(), PackageCState::Pc2);
    }

    #[test]
    fn pc6_requires_all_cores_in_c6() {
        let mut u = UncoreModel::skylake(3, Nanos::ZERO);
        u.update(3, 2, Nanos::new(10.0));
        assert_eq!(u.state(), PackageCState::Pc2);
        u.update(3, 3, Nanos::new(20.0));
        assert_eq!(u.state(), PackageCState::Pc6);
        // One core waking drops straight to PC0.
        u.update(2, 2, Nanos::new(30.0));
        assert_eq!(u.state(), PackageCState::Pc0);
    }

    #[test]
    fn aw_cores_block_pc6() {
        // The documented limitation: cores idling in C6A (coherent
        // caches) count as idle but never as C6, so PC6 is unreachable.
        let mut u = UncoreModel::skylake(2, Nanos::ZERO);
        u.update(2, 0, Nanos::new(10.0));
        assert_eq!(u.state(), PackageCState::Pc2);
    }

    #[test]
    fn energy_integrates_state_power() {
        let mut u = UncoreModel::skylake(1, Nanos::ZERO);
        // 1 ms at PC0 (12 W) then 1 ms at PC6 (2 W).
        u.update(1, 1, Nanos::from_millis(1.0));
        let total = u.finish(Nanos::from_millis(2.0));
        assert!((total.as_joules() - (12.0e-3 + 2.0e-3)).abs() < 1e-9, "{total}");
    }

    #[test]
    fn residencies_partition() {
        let mut u = UncoreModel::skylake(1, Nanos::ZERO);
        u.update(1, 0, Nanos::new(40.0));
        u.update(0, 0, Nanos::new(80.0));
        u.finish(Nanos::new(100.0));
        let sum = u.residency(PackageCState::Pc0).get()
            + u.residency(PackageCState::Pc2).get()
            + u.residency(PackageCState::Pc6).get();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((u.residency(PackageCState::Pc2).get() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_accounting() {
        let mut u = UncoreModel::skylake(1, Nanos::ZERO);
        u.update(1, 1, Nanos::from_millis(1.0));
        u.reset_metrics(Nanos::from_millis(1.0));
        assert_eq!(u.energy(), Joules::ZERO);
        assert_eq!(u.state(), PackageCState::Pc6);
    }

    #[test]
    #[should_panic(expected = "C6 cores must be idle")]
    fn rejects_inconsistent_counts() {
        let mut u = UncoreModel::skylake(2, Nanos::ZERO);
        u.update(1, 2, Nanos::new(1.0));
    }

    #[test]
    fn ccx_credit_applies_in_pc2() {
        // 8 zen2-style cores = 2 CCXes of 4. One CCX fully in C6 while
        // the package sits in PC2 credits one L3 slice.
        let zen = HardwareModel::zen2();
        let mut u = UncoreModel::for_hw(zen, 8, Nanos::ZERO);
        // All idle, one CCX (4 cores) in C6: PC2 with one slice asleep.
        u.update_ccx(8, 4, 1, Nanos::from_millis(1.0));
        assert_eq!(u.state(), PackageCState::Pc2);
        u.finish(Nanos::from_millis(2.0));
        // 1 ms at PC0 (40 W) + 1 ms at PC2 minus one slice credit.
        let credited = (zen.uncore.pc2 - zen.ccx.unwrap().l3_sleep).max(zen.uncore.pc6);
        let expect = 40.0e-3 + credited.as_watts() * 1.0e-3;
        assert!((u.energy().as_joules() - expect).abs() < 1e-9, "{}", u.energy());
    }

    #[test]
    fn ccx_credit_ignored_without_spec() {
        // Skylake has no CCX spec: a nonzero asleep count changes nothing.
        let mut a = UncoreModel::skylake(4, Nanos::ZERO);
        let mut b = UncoreModel::skylake(4, Nanos::ZERO);
        a.update(4, 0, Nanos::from_millis(1.0));
        b.update_ccx(4, 0, 7, Nanos::from_millis(1.0));
        assert_eq!(a.finish(Nanos::from_millis(2.0)), b.finish(Nanos::from_millis(2.0)));
    }
}
