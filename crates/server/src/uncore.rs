//! Package-level (uncore) idle states.
//!
//! The paper scopes itself to *core* C-states and notes (footnote 1)
//! that package C-states (PC2/PC6…) save additional uncore power but
//! need *every* core idle — and deep package states additionally need
//! every core in C6, because a core with live caches (C1…C6A) still
//! requires the coherence fabric powered. That is exactly why AW's C6A
//! keeps the package out of PC6: its caches stay coherent. The follow-up
//! AgilePkgC paper (ref [9]) attacks that limitation; this module models
//! the baseline package behaviour so the simulator's package power is
//! honest about it.

use aw_sim::{EnergyMeter, ResidencyTracker};
use aw_types::{Joules, MilliWatts, Nanos, Ratio};
use serde::Serialize;

/// Package-level idle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum PackageCState {
    /// At least one core is active or transitioning: uncore fully on.
    Pc0,
    /// Every core idle: uncore clock-gated where possible.
    Pc2,
    /// Every core in (legacy) C6 with caches flushed: uncore voltage
    /// reduced, shared cache in retention.
    Pc6,
}

/// Uncore power levels per package state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct UncorePower {
    /// Uncore power with any core active.
    pub pc0: MilliWatts,
    /// Uncore power with all cores idle.
    pub pc2: MilliWatts,
    /// Uncore power with all cores in C6.
    pub pc6: MilliWatts,
}

impl UncorePower {
    /// Skylake-like defaults: 12 W active, 8 W all-idle, 2 W in PC6.
    #[must_use]
    pub fn skylake() -> Self {
        UncorePower {
            pc0: MilliWatts::from_watts(12.0),
            pc2: MilliWatts::from_watts(8.0),
            pc6: MilliWatts::from_watts(2.0),
        }
    }

    /// The power drawn in `state`.
    #[must_use]
    pub fn of(&self, state: PackageCState) -> MilliWatts {
        match state {
            PackageCState::Pc0 => self.pc0,
            PackageCState::Pc2 => self.pc2,
            PackageCState::Pc6 => self.pc6,
        }
    }
}

/// Tracks the package idle state from per-core occupancy counts and
/// integrates uncore energy.
///
/// The server simulator reports every change in the number of
/// idle/flushed cores; the model derives the package state:
///
/// * any core busy → PC0;
/// * all cores idle → PC2;
/// * all cores idle **and** all in C6 → PC6.
///
/// # Examples
///
/// ```
/// use aw_server::{PackageCState, UncoreModel};
/// use aw_types::Nanos;
///
/// let mut u = UncoreModel::skylake(4, Nanos::ZERO);
/// assert_eq!(u.state(), PackageCState::Pc0);
///
/// // All four cores go idle, two of them into C6:
/// u.update(4, 2, Nanos::from_micros(10.0));
/// assert_eq!(u.state(), PackageCState::Pc2);
///
/// // The other two reach C6 as well:
/// u.update(4, 4, Nanos::from_micros(50.0));
/// assert_eq!(u.state(), PackageCState::Pc6);
/// ```
#[derive(Debug, Clone)]
pub struct UncoreModel {
    cores: usize,
    power: UncorePower,
    state: PackageCState,
    meter: EnergyMeter,
    tracker: ResidencyTracker<PackageCState>,
}

impl UncoreModel {
    /// Creates the model for a `cores`-core package with Skylake-like
    /// uncore powers.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn skylake(cores: usize, start: Nanos) -> Self {
        UncoreModel::new(cores, UncorePower::skylake(), start)
    }

    /// Creates the model with explicit power levels.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: usize, power: UncorePower, start: Nanos) -> Self {
        assert!(cores > 0, "need at least one core");
        UncoreModel {
            cores,
            power,
            state: PackageCState::Pc0,
            meter: EnergyMeter::new(start),
            tracker: ResidencyTracker::new(PackageCState::Pc0, start),
        }
    }

    /// Current package state.
    #[must_use]
    pub fn state(&self) -> PackageCState {
        self.state
    }

    /// Reports the occupancy at time `now`: `idle_cores` cores resident
    /// in any idle state, of which `c6_cores` are in legacy C6.
    ///
    /// # Panics
    ///
    /// Panics if the counts are inconsistent with the core count.
    pub fn update(&mut self, idle_cores: usize, c6_cores: usize, now: Nanos) {
        assert!(idle_cores <= self.cores, "idle count exceeds core count");
        assert!(c6_cores <= idle_cores, "C6 cores must be idle cores");
        let next = if idle_cores < self.cores {
            PackageCState::Pc0
        } else if c6_cores == self.cores {
            PackageCState::Pc6
        } else {
            PackageCState::Pc2
        };
        if next != self.state {
            self.meter.advance(self.power.of(self.state), now);
            self.tracker.transition(next, now);
            self.state = next;
        }
    }

    /// Closes the observation window and returns accumulated energy.
    pub fn finish(&mut self, end: Nanos) -> Joules {
        self.meter.advance(self.power.of(self.state), end);
        self.tracker.finish(end);
        self.meter.energy()
    }

    /// Restarts energy/residency accounting at `now`, keeping the
    /// current state (warm-up boundary).
    pub fn reset_metrics(&mut self, now: Nanos) {
        self.meter = EnergyMeter::new(now);
        self.tracker = ResidencyTracker::new(self.state, now);
    }

    /// Fraction of observed time in `state`.
    #[must_use]
    pub fn residency(&self, state: PackageCState) -> Ratio {
        self.tracker.residency(&state)
    }

    /// Uncore energy accumulated so far (excludes the open interval).
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.meter.energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_pc0() {
        let u = UncoreModel::skylake(2, Nanos::ZERO);
        assert_eq!(u.state(), PackageCState::Pc0);
    }

    #[test]
    fn all_idle_enters_pc2() {
        let mut u = UncoreModel::skylake(2, Nanos::ZERO);
        u.update(1, 0, Nanos::new(10.0));
        assert_eq!(u.state(), PackageCState::Pc0);
        u.update(2, 0, Nanos::new(20.0));
        assert_eq!(u.state(), PackageCState::Pc2);
    }

    #[test]
    fn pc6_requires_all_cores_in_c6() {
        let mut u = UncoreModel::skylake(3, Nanos::ZERO);
        u.update(3, 2, Nanos::new(10.0));
        assert_eq!(u.state(), PackageCState::Pc2);
        u.update(3, 3, Nanos::new(20.0));
        assert_eq!(u.state(), PackageCState::Pc6);
        // One core waking drops straight to PC0.
        u.update(2, 2, Nanos::new(30.0));
        assert_eq!(u.state(), PackageCState::Pc0);
    }

    #[test]
    fn aw_cores_block_pc6() {
        // The documented limitation: cores idling in C6A (coherent
        // caches) count as idle but never as C6, so PC6 is unreachable.
        let mut u = UncoreModel::skylake(2, Nanos::ZERO);
        u.update(2, 0, Nanos::new(10.0));
        assert_eq!(u.state(), PackageCState::Pc2);
    }

    #[test]
    fn energy_integrates_state_power() {
        let mut u = UncoreModel::skylake(1, Nanos::ZERO);
        // 1 ms at PC0 (12 W) then 1 ms at PC6 (2 W).
        u.update(1, 1, Nanos::from_millis(1.0));
        let total = u.finish(Nanos::from_millis(2.0));
        assert!((total.as_joules() - (12.0e-3 + 2.0e-3)).abs() < 1e-9, "{total}");
    }

    #[test]
    fn residencies_partition() {
        let mut u = UncoreModel::skylake(1, Nanos::ZERO);
        u.update(1, 0, Nanos::new(40.0));
        u.update(0, 0, Nanos::new(80.0));
        u.finish(Nanos::new(100.0));
        let sum = u.residency(PackageCState::Pc0).get()
            + u.residency(PackageCState::Pc2).get()
            + u.residency(PackageCState::Pc6).get();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((u.residency(PackageCState::Pc2).get() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_accounting() {
        let mut u = UncoreModel::skylake(1, Nanos::ZERO);
        u.update(1, 1, Nanos::from_millis(1.0));
        u.reset_metrics(Nanos::from_millis(1.0));
        assert_eq!(u.energy(), Joules::ZERO);
        assert_eq!(u.state(), PackageCState::Pc6);
    }

    #[test]
    #[should_panic(expected = "C6 cores must be idle")]
    fn rejects_inconsistent_counts() {
        let mut u = UncoreModel::skylake(2, Nanos::ZERO);
        u.update(1, 2, Nanos::new(1.0));
    }
}
