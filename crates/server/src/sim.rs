//! The discrete-event server simulation loop.

use std::collections::BTreeMap;
use std::fmt;

use aw_cstates::{CState, CStateConfig, CircuitBreaker};
use aw_faults::{FailureArtifact, FaultPlan, InvariantChecker, ServerFaultHook};
use aw_power::ResidencyVector;
use aw_sim::{EventQueue, SampleSet, SimRng};
use aw_telemetry::{
    Attribution, AttributionReport, RequestSpan, SloReport, TelemetryRecorder, TelemetryReport,
    WindowCounters, WindowObserver,
};
use aw_types::{MilliWatts, Nanos, Ratio};

use crate::config::{Dispatch, GovernorKind, ServerConfig, SnoopTraffic};
use crate::core::{CoreState, QueuedRequest, SimCore};
use crate::idle::IdleInterval;
use crate::metrics::{DegradationStats, LatencyBreakdown, LatencyStats, RunMetrics};
use crate::trace;
use crate::uncore::{PackageCState, UncoreModel};
use crate::workload::WorkloadSpec;

/// Backoff between retries of a stuck UFPG un-gate attempt (mirrors
/// `aw_pma::WAKE_RETRY_BACKOFF`; aw-server does not depend on aw-pma).
const WAKE_RETRY_BACKOFF: Nanos = Nanos::new(100.0);

/// Extra cache-wake time when the CCSM drowsy exit must repeat (two PMA
/// clocks at 500 MHz).
const DROWSY_REPEAT: Nanos = Nanos::new(4.0);

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// The next open-loop request arrives.
    Arrival,
    /// A core finishes its in-flight request.
    ServiceDone { core: usize, gen: u64 },
    /// A core completes its idle-state entry transition.
    EntryDone { core: usize, gen: u64 },
    /// A core completes its wake transition and resumes execution.
    WakeDone { core: usize, gen: u64 },
    /// A coherence snoop targets a core.
    Snoop { core: usize },
    /// The per-core OS timer tick fires.
    TimerTick { core: usize },
    /// End of the warm-up period: metrics reset.
    WarmupEnd,
    /// Injected fault: a wake interrupt with no pending work.
    SpuriousWake { core: usize },
    /// Redelivery of a wake interrupt that an injected fault swallowed.
    WakeRedelivery { core: usize },
    /// Injected fault: a burst of coherence snoops hits a core.
    SnoopStorm { core: usize },
    /// Injected fault: a machine-wide service-time slowdown burst begins.
    SlowdownStart,
    /// A shed or timed-out request is resubmitted by the client after
    /// jittered backoff.
    Retry { service: Nanos, attempt: u32 },
}

/// The server simulator: drives a [`WorkloadSpec`] through a
/// [`ServerConfig`] and produces [`RunMetrics`].
///
/// See the crate-level example for usage.
pub struct ServerSim {
    config: ServerConfig,
    workload: WorkloadSpec,
    rng: SimRng,
    /// Dedicated stream for snoop inter-arrival gaps: keeping snoop draws
    /// out of the workload stream means enabling snoops does not perturb
    /// the arrival/service sample path, so configurations with and without
    /// snoop traffic are directly comparable (common random numbers).
    snoop_rng: SimRng,
    queue: EventQueue<Event>,
    cores: Vec<SimCore>,
    rr_next: usize,
    latencies: SampleSet,
    transition_waits: SampleSet,
    queue_waits: SampleSet,
    service_times: SampleSet,
    completed: u64,
    warmed_up: bool,
    next_arrival: Nanos,
    end: Nanos,
    uncore: UncoreModel,
    /// `Some` when tracing is enabled (see
    /// [`crate::SimBuilder::with_telemetry`]); `None` keeps every
    /// emission site a single branch on the fast path.
    telemetry: Option<TelemetryRecorder>,
    /// `Some` when latency attribution is enabled (see
    /// [`crate::SimBuilder::with_attribution`]).
    attrib: Option<Attribution>,
    /// Per-core (accounting-state label, entered-at) marks backing the
    /// attribution timeline's residency intervals.
    attrib_marks: Vec<(&'static str, Nanos)>,
    /// Start of the measured window (= warm-up end): attribution ignores
    /// power/residency before it, matching the metric reset.
    measure_start: Nanos,
    /// The seed the simulator was built with, kept for replay artifacts.
    seed: u64,
    /// `Some` when fault injection is enabled (see
    /// [`crate::SimBuilder::with_faults`]). Every draw comes from the
    /// plan's own seeded streams, so the workload sample path is never
    /// perturbed.
    faults: Option<Box<dyn ServerFaultHook>>,
    /// Dedicated stream for client retry-backoff jitter: drawn only when
    /// a request is actually shed or timed out, so overload-free runs
    /// never touch it (common random numbers).
    retry_rng: SimRng,
    /// Per-core circuit breakers demoting agile states after repeated
    /// wake failures.
    breakers: Vec<CircuitBreaker>,
    /// The enabled C-state set with agile states demoted to their legacy
    /// twins, used while a core's breaker is open.
    demoted_cstates: CStateConfig,
    /// Fault, shedding, retry, and breaker counters for the whole run.
    degradation: DegradationStats,
    /// Runtime invariant checker; violations become a
    /// [`FailureArtifact`] in the run output instead of a panic.
    invariants: InvariantChecker,
    /// End of the current injected slowdown burst (`ZERO` when none).
    slowdown_until: Nanos,
    /// Non-tick admission attempts over the whole run (arrivals plus
    /// client retries), for the request-conservation invariant.
    arrivals_total: u64,
    /// Non-tick completions over the whole run (warm-up included), for
    /// the request-conservation invariant.
    completed_all: u64,
    /// `Some` when raw latency-sample capture is enabled (see
    /// [`crate::SimBuilder::with_latency_samples`]): every measured
    /// latency is appended here as well as to the `latencies` reservoir.
    /// Pure observation — never read during the run.
    latency_log: Option<Vec<f64>>,
    /// `Some` when idle analysis is enabled (see
    /// [`crate::SimBuilder::with_idle_analysis`]): every completed idle
    /// round trip is recorded on the wake path. Pure observation —
    /// never read during the run.
    idle_log: Option<Vec<IdleInterval>>,
    /// Per-core governor prediction stashed at the `begin_idle`
    /// selection point, consumed by the matching wake-path record.
    /// Only written while `idle_log` is attached.
    idle_predictions: Vec<Option<Nanos>>,
    /// `Some` when streaming observation is enabled (see
    /// [`crate::SimBuilder::run_streaming`]): closed attribution windows
    /// are pushed here as the event loop crosses their boundaries. Pure
    /// observation — windows are cloned out of the timeline, never
    /// flushed early, so the batch output is unchanged.
    observer: Option<Box<dyn WindowObserver>>,
    /// The p99 target stamped on each streamed window's SLO verdict
    /// (`None` streams windows without a verdict).
    stream_slo: Option<Nanos>,
    /// `false` disables the analytic idle-skip fast path (the
    /// `--no-idle-skip` debug flag): every event then flows through the
    /// calendar queue exactly as in the classic stepped engine. The two
    /// modes are byte-identical by construction (DESIGN §15); the flag
    /// exists so the equivalence stays checkable end-to-end.
    idle_skip: bool,
    /// The core whose wake → serve → re-park chain is currently being
    /// run inline (analytic idle-skip): that core's chain deadlines
    /// divert to `chain_next` instead of the event queue.
    chain_core: Option<usize>,
    /// The next inline-chain event, consumed by the driver loop in
    /// [`ServerSim::run_chain`]. At most one chain deadline is ever
    /// outstanding, so a single slot replaces the queue.
    chain_next: Option<(Nanos, Event)>,
    /// Upper bound on the service-time stretch factor (AW frequency
    /// degradation; Turbo only *shortens* service), precomputed for the
    /// idle-skip eligibility test.
    max_time_factor: f64,
    /// Logical simulation events processed — popped from the queue or
    /// run inline by the idle-skip chain. The numerator of the
    /// events-per-second throughput metric; identical with idle-skip on
    /// or off.
    events: u64,
    /// Events run inline by the idle-skip chain (subset of `events`).
    chained: u64,
    /// Cores currently parked in some C-state, maintained incrementally
    /// at each life-cycle transition so the package-state update avoids
    /// an O(cores) rescan on every event.
    idle_cores: usize,
    /// Subset of `idle_cores` parked specifically in core C6.
    c6_cores: usize,
}

/// Everything a fully instrumented run produces: the metrics plus the
/// optional telemetry, attribution, and SLO reports.
///
/// Produced by [`crate::SimBuilder::run`]; each optional field is `Some`
/// exactly when the matching builder knob was set.
#[derive(Debug)]
pub struct RunOutput {
    /// The run's aggregate metrics. `metrics.telemetry` and
    /// `metrics.attribution` carry the respective summaries when the
    /// matching instrumentation was enabled.
    pub metrics: RunMetrics,
    /// Full telemetry report ([`crate::SimBuilder::with_telemetry`] runs
    /// only).
    pub telemetry: Option<TelemetryReport>,
    /// Full attribution report — per-request spans, timeline, summary
    /// ([`crate::SimBuilder::with_attribution`] runs only).
    pub attribution: Option<AttributionReport>,
    /// SLO verdict over the attribution timeline
    /// ([`crate::SimBuilder::with_slo`] runs only).
    pub slo: Option<SloReport>,
    /// Raw measured latencies in ns, completion order
    /// ([`crate::SimBuilder::with_latency_samples`] runs only). Lets an
    /// aggregator merge samples across runs for exact fleet quantiles.
    pub latency_samples: Option<Vec<f64>>,
    /// Every completed idle round trip, in wake order
    /// ([`crate::SimBuilder::with_idle_analysis`] runs only). Feed to
    /// `aw-sleep` for idle-period distributions, the governor audit,
    /// and the opportunity ledger.
    pub idle_intervals: Option<Vec<IdleInterval>>,
    /// `Some` when a runtime invariant was violated: the structured
    /// artifact carries the seed and fault plan needed to replay the
    /// failing run. [`crate::SimBuilder::run`] hands it back for
    /// harnesses to inspect; [`RunOutput::into_metrics`] panics on it.
    pub failure: Option<FailureArtifact>,
    /// Events the analytic idle-skip chain ran inline instead of
    /// through the event queue — a subset of `metrics.events`, always
    /// zero with idle-skip off. `chained / events` is the skip hit
    /// rate. Deliberately an engine diagnostic *outside*
    /// [`RunMetrics`]: instrumented runs (fault plans, telemetry,
    /// window observers) disable the fast path, and their metrics must
    /// stay bit-identical to plain runs.
    pub chained: u64,
}

impl RunOutput {
    /// Unwraps the metrics, panicking if the run violated a runtime
    /// invariant — for callers that treat any invariant violation as a
    /// bug.
    ///
    /// # Panics
    ///
    /// Panics with the replayable [`FailureArtifact`] message if
    /// [`RunOutput::failure`] is `Some`.
    #[must_use]
    pub fn into_metrics(self) -> RunMetrics {
        if let Some(failure) = &self.failure {
            panic!("{failure}");
        }
        self.metrics
    }
}

impl ServerSim {
    /// Builds a simulator for one run.
    #[must_use]
    pub fn new(config: ServerConfig, workload: WorkloadSpec, seed: u64) -> Self {
        let mut rng = SimRng::seed(seed);
        let cores: Vec<SimCore> =
            (0..config.cores).map(|id| SimCore::new(id, config.governor.build())).collect();
        let _ = rng.fork(0); // decorrelate from the seed's first draw
        let end = config.warmup + config.duration;
        let measure_start = config.warmup;
        let attrib_marks = vec![("C0", Nanos::ZERO); cores.len()];
        let uncore = UncoreModel::for_hw(config.hw, config.cores, Nanos::ZERO);
        let snoop_rng = SimRng::seed(seed ^ 0x534E_4F4F_505F_5247); // "SNOOP_RG"
        let retry_rng = SimRng::seed(seed ^ 0x5245_5452_595F_5247); // "RETRY_RG"
        let breakers = (0..config.cores)
            .map(|_| CircuitBreaker::new(config.breaker.threshold, config.breaker.cooldown))
            .collect();
        let idle_predictions = vec![None; config.cores];
        let demoted_cstates = config.cstates.demote_agile();
        // Pending-event envelope, sized like the sample reservoirs from
        // the offered load rather than from the core count alone: one
        // service/entry/wake deadline per core, per-core timer ticks, a
        // handful of global timers (arrival, snoop, warmup, fault
        // clocks) — plus, when overload protection can shed or expire
        // work, up to one in-flight retry event per request arriving
        // inside the longest jittered backoff window (offered QPS ×
        // horizon × one event each, capped so a pathological
        // parameterization cannot demand an absurd allocation).
        let mut queue_cap = config.cores * 4 + 16;
        if config.queue_cap.is_some() || config.request_timeout.is_some() {
            let exp = f64::from(1u32 << (config.retry.max_attempts.saturating_sub(1)).min(8));
            let horizon = config.retry.base_backoff * (exp * 1.5);
            let retries = workload.offered_qps() * horizon.as_secs();
            if retries.is_finite() && retries > 0.0 {
                queue_cap += (retries.ceil() as usize).min(1 << 14);
            }
        }
        let s = workload.frequency_scalability();
        let max_time_factor =
            if config.is_aw() { 1.0 + s * config.aw_frequency_degradation } else { 1.0 };
        ServerSim {
            config,
            workload,
            rng,
            snoop_rng,
            queue: EventQueue::with_capacity(queue_cap),
            cores,
            rr_next: 0,
            latencies: SampleSet::new(),
            transition_waits: SampleSet::new(),
            queue_waits: SampleSet::new(),
            service_times: SampleSet::new(),
            completed: 0,
            warmed_up: false,
            next_arrival: Nanos::ZERO,
            end,
            uncore,
            telemetry: None,
            attrib: None,
            attrib_marks,
            measure_start,
            seed,
            faults: None,
            retry_rng,
            breakers,
            demoted_cstates,
            degradation: DegradationStats::default(),
            invariants: InvariantChecker::new(),
            slowdown_until: Nanos::ZERO,
            arrivals_total: 0,
            completed_all: 0,
            latency_log: None,
            idle_log: None,
            idle_predictions,
            observer: None,
            stream_slo: None,
            idle_skip: true,
            chain_core: None,
            chain_next: None,
            max_time_factor,
            events: 0,
            chained: 0,
            idle_cores: 0,
            c6_cores: 0,
        }
    }

    /// Enables or disables the analytic idle-skip fast path (used by
    /// [`crate::SimBuilder::without_idle_skip`]). Both settings produce
    /// byte-identical output; `false` forces every event through the
    /// queue for equivalence checking and debugging.
    pub(crate) fn set_idle_skip(&mut self, on: bool) {
        self.idle_skip = on;
    }

    /// Attaches a fault-injection plan (used by
    /// [`crate::SimBuilder::with_faults`]). Every hook draw comes from
    /// the plan's own seeded streams, so a plan whose rates are all zero
    /// (e.g. [`FaultPlan::none`]) leaves the run bit-identical to one
    /// with no plan attached, and the same seed + plan always reproduces
    /// the same disrupted run.
    pub(crate) fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(plan));
    }

    /// Enables telemetry (used by
    /// [`crate::SimBuilder::with_telemetry`]): structured trace events
    /// (bounded to `trace_limit`, oldest evicted first) plus the metrics
    /// registry.
    ///
    /// # Panics
    ///
    /// Panics if `trace_limit` is zero.
    pub(crate) fn set_telemetry(&mut self, trace_limit: usize) {
        self.telemetry = Some(TelemetryRecorder::new(self.cores.len(), trace_limit));
    }

    /// Enables per-request latency attribution over the measured window
    /// (used by [`crate::SimBuilder::with_attribution`]): every
    /// completed (non-tick) request becomes a [`RequestSpan`], and
    /// power/residency intervals feed a timeline with `window`-sized
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not strictly positive.
    pub(crate) fn set_attribution(&mut self, window: Nanos) {
        // Pre-size the span reservoir for the expected completions so
        // the per-request `RequestSpan` push reuses one allocation
        // instead of growing through doubling reallocations mid-run.
        self.attrib = Some(Attribution::with_capacity(window, self.expected_samples()));
    }

    /// Enables raw latency-sample capture (used by
    /// [`crate::SimBuilder::with_latency_samples`]).
    pub(crate) fn set_latency_samples(&mut self) {
        self.latency_log = Some(Vec::with_capacity(self.expected_samples()));
    }

    /// Enables idle-interval capture (used by
    /// [`crate::SimBuilder::with_idle_analysis`]). A light-load core
    /// completes roughly one idle round trip per served request, so the
    /// sample-reservoir estimate is a reasonable pre-size here too.
    pub(crate) fn set_idle_analysis(&mut self) {
        self.idle_log = Some(Vec::with_capacity(self.expected_samples()));
    }

    /// Attaches a streaming window observer (used by
    /// [`crate::SimBuilder::run_streaming`]); requires attribution,
    /// which owns the timeline the stream is cut from. `slo_p99` stamps
    /// each streamed window with the per-window `p99 > target` verdict.
    pub(crate) fn set_window_observer(
        &mut self,
        observer: Box<dyn WindowObserver>,
        slo_p99: Option<Nanos>,
    ) {
        self.observer = Some(observer);
        self.stream_slo = slo_p99;
    }

    /// The cumulative degradation counters in the telemetry-layer shape
    /// stamped on each streamed window.
    fn window_counters(d: &DegradationStats) -> WindowCounters {
        WindowCounters {
            faults_injected: d.faults_injected,
            shed: d.shed,
            timeouts: d.timeouts,
            retries: d.retries,
            breaker_trips: d.breaker_trips,
            breaker_restores: d.breaker_restores,
            fallback_exits: d.fallback_exits,
        }
    }

    /// Streams every attribution window that closed at or before the
    /// run's watermark — the earliest simulated time any *future*
    /// power/residency deposit or span completion can touch.
    ///
    /// The watermark is computed read-only: each core's energy meter
    /// position and open residency mark are *inspected*, never flushed
    /// (flushing would bump core generations and invalidate pending
    /// events, perturbing the run). Future power deposits start at the
    /// depositing core's current meter position, residency deposits at
    /// its open mark, and span completions at the current event time —
    /// all at or past the minimum of those clocks — so every window
    /// ending at or before it is final and safe to clone out.
    fn maybe_stream(&mut self, now: Nanos) {
        let Some(mut observer) = self.observer.take() else {
            return;
        };
        if let Some(a) = self.attrib.as_mut() {
            let wn = a.timeline().window_duration().as_nanos();
            // Cheap pre-check: the watermark never leads `now`, so no
            // window can close before `now` crosses its boundary.
            if now.as_nanos() >= (a.stream_cursor() + 1) as f64 * wn {
                let mut wm = f64::INFINITY;
                for (i, core) in self.cores.iter().enumerate() {
                    wm = wm.min(core.meter.now().as_nanos());
                    wm = wm.min(self.attrib_marks[i].1.as_nanos());
                }
                // Deposits clamp their start to the measured window, so
                // nothing earlier than `measure_start` is ever touched.
                let watermark = Nanos::new(wm.max(self.measure_start.as_nanos()));
                let counters = Self::window_counters(&self.degradation);
                a.stream_closed(watermark, counters, self.stream_slo, observer.as_mut());
            }
        }
        self.observer = Some(observer);
    }

    /// Expected measured completions, used to pre-size the sample
    /// reservoirs: offered load times measured duration, bounded so a
    /// pathological parameterization cannot demand an absurd allocation.
    fn expected_samples(&self) -> usize {
        let expected = self.workload.offered_qps() * self.config.duration.as_secs();
        if expected.is_finite() && expected > 0.0 {
            (expected.ceil() as usize).min(1 << 22)
        } else {
            0
        }
    }

    /// Advances core `id`'s meters to `now`, feeding the elapsed
    /// constant-power interval to the attribution timeline, then switches
    /// the standing power.
    fn switch_core_power(&mut self, id: usize, now: Nanos, power: MilliWatts) {
        if let Some(a) = self.attrib.as_mut() {
            let core = &self.cores[id];
            let start = core.meter.now().max(self.measure_start);
            if now > start {
                a.record_power(start, now, core.current_power);
            }
        }
        self.cores[id].switch_power(now, power);
    }

    /// Moves core `id` to a new life-cycle state, checking the transition
    /// against the legal life-cycle arcs and closing the previous
    /// accounting-state interval in the attribution timeline.
    fn set_core_state(&mut self, id: usize, now: Nanos, state: CoreState) {
        let from = self.cores[id].state;
        let legal = match (from, state) {
            (CoreState::Active, CoreState::Entering { .. })
            | (CoreState::Idle { .. }, CoreState::Waking { .. })
            | (CoreState::Waking { .. }, CoreState::Active) => true,
            (CoreState::Entering { target }, CoreState::Idle { state: entered }) => {
                target == entered
            }
            _ => false,
        };
        self.invariants.check(legal, || {
            format!("core {id}: illegal life-cycle transition {from:?} -> {state:?} at {now}")
        });
        if let Some(a) = self.attrib.as_mut() {
            let (label, since) = self.attrib_marks[id];
            let start = since.max(self.measure_start);
            if now > start {
                a.record_residency(label, start, now);
            }
            self.attrib_marks[id] = (trace::cstate_label(state.accounting_state()), now);
        }
        if let CoreState::Idle { state: parked } = from {
            self.idle_cores -= 1;
            if parked == CState::C6 {
                self.c6_cores -= 1;
            }
        }
        if let CoreState::Idle { state: parked } = state {
            self.idle_cores += 1;
            if parked == CState::C6 {
                self.c6_cores += 1;
            }
        }
        self.cores[id].set_state(now, state);
    }

    /// Re-derives the package state from core occupancy after any core
    /// state change. The occupancy counts are maintained incrementally in
    /// [`Self::set_core_state`].
    fn update_uncore(&mut self, now: Nanos) {
        debug_assert_eq!(
            (self.idle_cores, self.c6_cores),
            self.cores.iter().fold((0, 0), |(idle, c6), core| match core.state {
                CoreState::Idle { state } => {
                    (idle + 1, c6 + usize::from(state == CState::C6))
                }
                _ => (idle, c6),
            }),
            "incremental idle/C6 counts diverged from core occupancy"
        );
        // On core-complex parts, count CCXes whose cores are all in
        // legacy C6: only those may sleep their L3 slice. Guarded so
        // the per-core scan never runs on models without a CCX
        // topology (skylake-sp) or when too few cores are in C6 for
        // any complex to be fully asleep.
        let asleep_ccx = match self.config.hw.ccx {
            Some(ccx) if self.c6_cores >= ccx.cores_per_ccx => self
                .cores
                .chunks(ccx.cores_per_ccx)
                .filter(|grp| {
                    grp.len() == ccx.cores_per_ccx
                        && grp
                            .iter()
                            .all(|c| matches!(c.state, CoreState::Idle { state: CState::C6 }))
                })
                .count(),
            _ => 0,
        };
        self.uncore.update_ccx(self.idle_cores, self.c6_cores, asleep_ccx, now);
    }

    /// The active-state (C0) power at base frequency.
    fn active_power(&self) -> MilliWatts {
        self.config.catalog.power(CState::C0, aw_cstates::FreqLevel::P1)
    }

    /// The power burned while transitioning to/from `idle_state`: the
    /// voltage and clock ramp down early in entry and back up late in
    /// exit, so the average over a transition is modeled as the midpoint
    /// of the two endpoint powers.
    fn transition_power(&self, idle_state: CState) -> MilliWatts {
        let idle = self.config.catalog.power(idle_state, aw_cstates::FreqLevel::P1);
        (self.active_power() + idle) / 2.0
    }

    /// The single execution path behind [`crate::SimBuilder::run`]:
    /// drives the event loop to completion and assembles the
    /// [`RunOutput`].
    pub(crate) fn run_to_output(mut self) -> RunOutput {
        // Every core starts active with nothing to do: send each to idle
        // immediately so the fleet begins in a realistic parked state.
        for id in 0..self.cores.len() {
            self.cores[id].current_power = self.active_power();
            self.begin_idle(id, Nanos::ZERO);
        }

        let gap = self.workload.next_gap(&mut self.rng);
        self.next_arrival = gap;
        self.queue.schedule(gap, Event::Arrival);
        self.queue.schedule(self.config.warmup, Event::WarmupEnd);
        if self.config.snoops.is_active() {
            for id in 0..self.cores.len() {
                self.schedule_snoop(id, Nanos::ZERO);
            }
        }
        if let Some(period) = self.config.timer_tick {
            // Stagger ticks across cores so they don't fire in lockstep.
            for id in 0..self.cores.len() {
                let phase = period * (id as f64 / self.cores.len() as f64);
                self.queue.schedule(phase, Event::TimerTick { core: id });
            }
        }
        if self.faults.is_some() {
            for id in 0..self.cores.len() {
                self.schedule_spurious(id, Nanos::ZERO);
                self.schedule_storm(id, Nanos::ZERO);
            }
            self.schedule_slowdown(Nanos::ZERO);
        }

        while let Some((now, event)) = self.queue.pop() {
            if now > self.end {
                break;
            }
            self.events += 1;
            if let Some(t) = self.telemetry.as_mut() {
                // Depth counts the popped event plus everything pending.
                t.sim_event(now, self.queue.len() + 1);
            }
            match event {
                Event::Arrival => self.on_arrival(now),
                Event::ServiceDone { core, gen } => self.on_service_done(core, gen, now),
                Event::EntryDone { core, gen } => self.on_entry_done(core, gen, now),
                Event::WakeDone { core, gen } => self.on_wake_done(core, gen, now),
                Event::Snoop { core } => self.on_snoop(core, now),
                Event::TimerTick { core } => self.on_timer_tick(core, now),
                Event::WarmupEnd => self.on_warmup_end(now),
                Event::SpuriousWake { core } => self.on_spurious_wake(core, now),
                Event::WakeRedelivery { core } => self.on_wake_redelivery(core, now),
                Event::SnoopStorm { core } => self.on_snoop_storm(core, now),
                Event::SlowdownStart => self.on_slowdown_start(now),
                Event::Retry { service, attempt } => self.on_retry(now, service, attempt),
            }
            if self.observer.is_some() {
                self.maybe_stream(now);
            }
        }

        let end = self.end;
        let report = self.telemetry.take().map(|t| t.into_report(end));
        if self.attrib.is_some() {
            // Flush the attribution timeline to the end of the run: the
            // standing power interval and open residency mark of every
            // core. `finalize` re-advances the meters to `end`, which is
            // then a zero-length no-op.
            for id in 0..self.cores.len() {
                let p = self.cores[id].current_power;
                self.switch_core_power(id, end, p);
                let (label, since) = self.attrib_marks[id];
                let start = since.max(self.measure_start);
                if end > start {
                    if let Some(a) = self.attrib.as_mut() {
                        a.record_residency(label, start, end);
                    }
                }
                self.attrib_marks[id] = (label, end);
            }
        }
        // With the timeline flushed to `end`, every remaining window is
        // final: stream them and close the observer.
        if let Some(mut observer) = self.observer.take() {
            if let Some(a) = self.attrib.as_mut() {
                let counters = Self::window_counters(&self.degradation);
                a.stream_remaining(counters, self.stream_slo, observer.as_mut());
            }
            observer.on_finish();
        }
        let attribution = self.attrib.take().map(Attribution::finish);
        let latency_samples = self.latency_log.take();
        let idle_intervals = self.idle_log.take();
        let mut metrics = self.finalize();
        metrics.telemetry = report.as_ref().map(|r| r.summary.clone());
        metrics.attribution = attribution.as_ref().map(|r| r.summary.clone());
        let fault_spec =
            self.faults.as_ref().map_or_else(|| "none".to_string(), |f| f.spec().to_string());
        let failure = FailureArtifact::from_checker(
            std::mem::take(&mut self.invariants),
            self.seed,
            fault_spec,
        );
        RunOutput {
            metrics,
            telemetry: report,
            attribution,
            slo: None,
            latency_samples,
            idle_intervals,
            failure,
            chained: self.chained,
        }
    }

    fn dispatch(&mut self) -> usize {
        match self.config.dispatch {
            Dispatch::RoundRobin => {
                let id = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.cores.len();
                id
            }
            Dispatch::Random => self.rng.index(self.cores.len()),
            Dispatch::LeastLoaded => self
                .cores
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.load())
                .map(|(i, _)| i)
                .unwrap_or(0),
        }
    }

    fn on_arrival(&mut self, now: Nanos) {
        let service = self.workload.next_service(&mut self.rng);
        let id = self.dispatch();
        // The next arrival is drawn and scheduled *before* the admit so
        // the queue's earliest pending time covers it — the idle-skip
        // eligibility test needs the full horizon in one peek. The RNG
        // draw order (service, dispatch, gap) is unchanged, and no
        // governor consults `next_arrival` inside `admit`, so the
        // reordering is invisible to the sample path.
        let gap = self.workload.next_gap(&mut self.rng);
        self.next_arrival = now + gap;
        self.queue.schedule(self.next_arrival, Event::Arrival);
        self.admit(id, now, service, 1);
    }

    /// Admits a client request (a fresh arrival or a retry) to core
    /// `id`'s run queue, shedding it when the bounded queue is full.
    /// Kernel timer ticks bypass this path — overload protection never
    /// drops OS housekeeping work.
    fn admit(&mut self, id: usize, now: Nanos, service: Nanos, attempt: u32) {
        self.arrivals_total += 1;
        if let Some(cap) = self.config.queue_cap {
            if self.cores[id].queue.len() >= cap {
                self.degradation.shed += 1;
                if let Some(t) = self.telemetry.as_mut() {
                    t.shed(id as u32, now, cap as u32);
                }
                self.schedule_retry(now, service, attempt);
                return;
            }
        }
        self.cores[id].queue.push_back(QueuedRequest {
            arrival: now,
            service,
            wake_penalty: Nanos::ZERO,
            wake_state: None,
            is_tick: false,
            attempt,
        });
        if let Some(t) = self.telemetry.as_mut() {
            t.enqueue(id as u32, now, self.cores[id].queue.len() as u32);
        }

        if let CoreState::Idle { state } = self.cores[id].state {
            if let Some(delay) = self.faults.as_mut().and_then(|f| f.lost_wake()) {
                // The wake interrupt is swallowed: the core stays parked
                // until the redelivery fires (or other work wakes it).
                self.note_fault(id, now, "lost-wake");
                self.queue.schedule(now + delay, Event::WakeRedelivery { core: id });
            } else if self.chain_eligible(id, state, now, service) {
                // Analytic idle-skip: the whole wake → serve → re-park
                // chain provably finishes before anything else fires,
                // so run it inline instead of through the queue.
                self.run_chain(id, state, now);
            } else {
                // This request personally pays the (possibly disrupted)
                // exit latency.
                let exit = self.begin_wake(id, state, now, "arrival");
                if let Some(req) = self.cores[id].queue.back_mut() {
                    req.wake_penalty = exit;
                    req.wake_state = Some(state);
                }
            }
        }
        // Active, Waking: the queue drains naturally.
        // Entering: EntryDone will notice the pending work and wake.
    }

    /// Decides whether the freshly admitted request on idle core `id`
    /// can be served as an inline chain: the wake → serve sequence must
    /// provably finish *strictly* before any other pending event fires
    /// and at or before the run's end (DESIGN §15). The bound uses the
    /// un-disrupted exit latency (fault injection disables the skip
    /// entirely) and the largest possible service stretch; Turbo only
    /// shortens service, so the bound is conservative. The strictness
    /// matters: on an exact tie the stepped engine would pop the
    /// earlier-scheduled event first, so ties fall back to stepping.
    fn chain_eligible(&mut self, id: usize, state: CState, now: Nanos, service: Nanos) -> bool {
        if !self.idle_skip
            || self.faults.is_some()
            || self.telemetry.is_some()
            || self.observer.is_some()
            || self.cores[id].queue.len() != 1
        {
            return false;
        }
        let exit = self.config.catalog.params(state).exit_latency;
        // A timeout shorter than the exit latency would drop the
        // request at dispatch and schedule a retry mid-chain.
        if self.config.request_timeout.is_some_and(|t| exit > t) {
            return false;
        }
        let chain_end = now + exit + service * self.max_time_factor;
        chain_end <= self.end && self.queue.peek_time().is_some_and(|next| chain_end < next)
    }

    /// Runs the admitted request's wake → serve steps inline: the same
    /// handlers the stepped engine would run, at the same timestamps, in
    /// the same order — only the queue traffic (two schedule/pop round
    /// trips per request) disappears. Mutations are identical by
    /// construction, which is what keeps idle-skip on/off byte-identical.
    ///
    /// The chain deliberately ends at `ServiceDone`: the re-park
    /// `EntryDone` deadline that `on_service_done` produces goes through
    /// the queue like any other event (the chain marker is cleared
    /// first), so the eligibility horizon never has to bound the entry
    /// latency of whatever C-state the governor picks next.
    fn run_chain(&mut self, id: usize, state: CState, now: Nanos) {
        self.chain_core = Some(id);
        let exit = self.begin_wake(id, state, now, "arrival");
        if let Some(req) = self.cores[id].queue.back_mut() {
            req.wake_penalty = exit;
            req.wake_state = Some(state);
        }
        let Some((wake_at, wake_ev)) = self.chain_next.take() else {
            self.chain_core = None;
            return;
        };
        self.events += 1;
        self.chained += 1;
        let Event::WakeDone { core, gen } = wake_ev else {
            unreachable!("begin_wake schedules WakeDone");
        };
        self.on_wake_done(core, gen, wake_at);
        let Some((serve_at, serve_ev)) = self.chain_next.take() else {
            self.chain_core = None;
            return;
        };
        self.events += 1;
        self.chained += 1;
        let Event::ServiceDone { core, gen } = serve_ev else {
            unreachable!("start_service schedules ServiceDone");
        };
        // Last inline step: clear the marker so the re-park EntryDone
        // (and anything else on_service_done schedules) takes the queue.
        self.chain_core = None;
        self.on_service_done(core, gen, serve_at);
    }

    /// Routes a core's wake/serve/park deadline into the event queue
    /// (stepped mode) or into the inline-chain slot while `id`'s chain
    /// is being run analytically.
    fn schedule_core_event(&mut self, id: usize, at: Nanos, event: Event) {
        if self.chain_core == Some(id) {
            self.chain_next = Some((at, event));
        } else {
            self.queue.schedule(at, event);
        }
    }

    /// Starts core `id`'s wake transition and returns the exit latency it
    /// will actually take, including any injected wake disruption.
    fn begin_wake(&mut self, id: usize, from: CState, now: Nanos, reason: &'static str) -> Nanos {
        let mut exit = self.config.catalog.params(from).exit_latency;
        if self.faults.is_some() && matches!(from, CState::C6A | CState::C6AE) {
            exit += self.agile_wake_disruption(id, from, now);
        }
        // The voltage/clock ramp means a transition burns roughly the
        // midpoint of the two endpoint powers, not full C0 power.
        let ramp = self.transition_power(from);
        if let Some(t) = self.telemetry.as_mut() {
            t.wake(id as u32, now, reason);
            t.state_change(id as u32, now, trace::exit_label(from));
        }
        self.switch_core_power(id, now, ramp);
        self.set_core_state(id, now, CoreState::Waking { from });
        let gen = self.cores[id].generation;
        self.schedule_core_event(id, now + exit, Event::WakeDone { core: id, gen });
        self.update_uncore(now);
        exit
    }

    /// Consults the fault hook for one agile (C6A/C6AE) wake and returns
    /// the extra exit latency from stuck-gate retries, the full-C6
    /// fallback, ADPLL relock overruns, and drowsy-wake repeats. Feeds
    /// the core's circuit breaker: a fallback counts as a failure, a
    /// clean agile exit as a success.
    fn agile_wake_disruption(&mut self, id: usize, from: CState, now: Nanos) -> Nanos {
        let (d, relock_extra) = match self.faults.as_mut() {
            Some(f) => (f.wake_disruption(), f.spec().relock_extra),
            None => return Nanos::ZERO,
        };
        let mut extra = Nanos::ZERO;
        if d.stuck_attempts > 0 {
            self.note_fault(id, now, "wake-fail");
            // Each stuck attempt re-runs the hardware wake plus an
            // exponentially growing retry backoff.
            let hw = self.config.catalog.params(from).hw_exit_latency();
            for i in 0..d.stuck_attempts {
                extra += hw + WAKE_RETRY_BACKOFF * f64::from(1u32 << i.min(8));
            }
        }
        if d.fell_back {
            // Retries exhausted: degrade gracefully to the full C6 exit.
            self.degradation.fallback_exits += 1;
            extra += self.config.catalog.params(CState::C6).exit_latency;
            if self.breakers[id].record_failure(now) {
                self.degradation.breaker_trips += 1;
                if let Some(t) = self.telemetry.as_mut() {
                    t.breaker_trip(id as u32, now);
                }
            }
        } else {
            self.breakers[id].record_success();
        }
        if d.relock_overrun {
            self.note_fault(id, now, "relock");
            extra += relock_extra;
        }
        if d.drowsy_retry {
            self.note_fault(id, now, "drowsy");
            extra += DROWSY_REPEAT;
        }
        extra
    }

    /// Records one injected-fault occurrence: bumps the degradation
    /// counter and emits the telemetry event when tracing is on.
    fn note_fault(&mut self, id: usize, now: Nanos, kind: &'static str) {
        self.degradation.faults_injected += 1;
        if let Some(t) = self.telemetry.as_mut() {
            t.fault(id as u32, now, kind);
        }
    }

    fn begin_idle(&mut self, id: usize, now: Nanos) {
        let hint = match self.config.governor {
            GovernorKind::Oracle => Some((self.next_arrival - now).clamp_non_negative()),
            _ => None,
        };
        // While a core's breaker is open (too many consecutive agile wake
        // failures), the governor selects from the demoted set: agile
        // states fall back to their legacy twins until the cooldown
        // elapses.
        let restores_before = self.breakers[id].restores();
        let breaker_open = self.breakers[id].is_open(now);
        if self.breakers[id].restores() > restores_before {
            self.degradation.breaker_restores += 1;
            if let Some(t) = self.telemetry.as_mut() {
                t.breaker_restore(id as u32, now);
            }
        }
        let cstates = if breaker_open {
            self.degradation.demoted_selections += 1;
            &self.demoted_cstates
        } else {
            &self.config.cstates
        };
        let target = self.cores[id].governor.select(cstates, &self.config.catalog, hint);
        if self.idle_log.is_some() {
            // Stash the prediction the governor acted on for the
            // wake-path interval record: the predictor's own estimate,
            // falling back to the oracle hint (read-only — pure
            // observation).
            self.idle_predictions[id] = self.cores[id].governor.last_prediction().or(hint);
        }
        if let Some(t) = self.telemetry.as_mut() {
            // Predictive governors report their own estimate; for hinted
            // (oracle) governors the hint *is* the prediction.
            let predicted =
                self.cores[id].governor.last_prediction().or(hint).unwrap_or(Nanos::ZERO);
            t.governor_decision(id as u32, now, trace::cstate_label(target), predicted);
            t.state_change(id as u32, now, trace::enter_label(target));
        }
        let entry = self.config.catalog.params(target).entry_latency;
        let ramp = self.transition_power(target);
        self.cores[id].idle_since = now;
        // Entry burns the ramp power until the idle level is reached.
        self.switch_core_power(id, now, ramp);
        self.set_core_state(id, now, CoreState::Entering { target });
        let gen = self.cores[id].generation;
        self.schedule_core_event(id, now + entry, Event::EntryDone { core: id, gen });
        self.update_uncore(now);
    }

    fn on_entry_done(&mut self, id: usize, gen: u64, now: Nanos) {
        if self.cores[id].generation != gen {
            return;
        }
        let CoreState::Entering { target } = self.cores[id].state else {
            return;
        };
        if let Some(t) = self.telemetry.as_mut() {
            t.state_change(id as u32, now, trace::cstate_label(target));
        }
        let idle_power = self.config.catalog.power(target, aw_cstates::FreqLevel::P1);
        self.switch_core_power(id, now, idle_power);
        self.set_core_state(id, now, CoreState::Idle { state: target });
        self.cores[id].record_entry(target);

        if self.cores[id].queue.is_empty() {
            self.update_uncore(now);
        } else {
            // Work arrived while the entry transition was in flight; the
            // head request pays this state's (possibly disrupted) exit
            // latency.
            let exit = self.begin_wake(id, target, now, "queued-work");
            if let Some(req) = self.cores[id].queue.front_mut() {
                req.wake_penalty = exit;
                req.wake_state = Some(target);
            }
        }
    }

    fn on_wake_done(&mut self, id: usize, gen: u64, now: Nanos) {
        if self.cores[id].generation != gen {
            return;
        }
        let CoreState::Waking { from } = self.cores[id].state else {
            return;
        };
        let idle_duration = now - self.cores[id].idle_since;
        if let Some(log) = self.idle_log.as_mut() {
            let start = self.cores[id].idle_since;
            log.push(IdleInterval {
                core: id,
                start,
                duration: idle_duration,
                chosen: from,
                predicted: self.idle_predictions[id],
                measured: start >= self.measure_start,
            });
        }
        if let Some(t) = self.telemetry.as_mut() {
            let target = self.config.catalog.params(from).target_residency;
            t.idle_outcome(id as u32, now, idle_duration, target);
            t.state_change(id as u32, now, "C0");
        }
        self.cores[id].governor.observe_idle(idle_duration);
        // One idle round trip completed: charge the hidden transition
        // energy (in-rush current, clock restart) that residency-based
        // models cannot attribute.
        self.cores[id].transition_energy += self.config.transition_energy;
        self.set_core_state(id, now, CoreState::Active);
        self.start_service(id, now);
    }

    fn start_service(&mut self, id: usize, now: Nanos) {
        let Some(req) = self.cores[id].queue.pop_front() else {
            // Nothing left to do: park the core again.
            self.begin_idle(id, now);
            return;
        };
        if let Some(t) = self.telemetry.as_mut() {
            t.dequeue(id as u32, now, self.cores[id].queue.len() as u32);
        }
        if let Some(timeout) = self.config.request_timeout {
            if !req.is_tick {
                let waited = now - req.arrival;
                if waited > timeout {
                    // The client gave up on this request; dropping it at
                    // dispatch sheds the now-useless service time, and
                    // the client retries after backoff.
                    self.degradation.timeouts += 1;
                    if let Some(t) = self.telemetry.as_mut() {
                        t.timeout(id as u32, now, waited);
                    }
                    self.schedule_retry(now, req.service, req.attempt);
                    self.start_service(id, now);
                    return;
                }
            }
        }

        let turbo = self.config.cstates.turbo() && self.cores[id].thermal.turbo_available();
        if turbo && !self.cores[id].serving_at_turbo {
            if let Some(t) = self.telemetry.as_mut() {
                t.turbo_engage(id as u32, now);
            }
        }
        let s = self.workload.frequency_scalability();
        let mut time_factor = if turbo {
            let speedup = self.config.base_freq / self.config.turbo_freq;
            1.0 - s + s * speedup
        } else {
            1.0
        };
        if self.config.is_aw() {
            // The UFPG power gates cost ~1% frequency, felt in proportion
            // to the workload's frequency scalability.
            time_factor *= 1.0 + s * self.config.aw_frequency_degradation;
        }
        if now < self.slowdown_until {
            if let Some(f) = self.faults.as_ref() {
                time_factor *= f.spec().slowdown_factor;
            }
        }
        let effective = req.service * time_factor;

        let power = if turbo { self.cores[id].thermal.turbo_power() } else { self.active_power() };
        self.switch_core_power(id, now, power);
        let core = &mut self.cores[id];
        core.serving_at_turbo = turbo;
        core.in_flight = Some(req);
        core.serve_start = now;
        let gen = core.generation;
        self.schedule_core_event(id, now + effective, Event::ServiceDone { core: id, gen });
    }

    fn on_service_done(&mut self, id: usize, gen: u64, now: Nanos) {
        if self.cores[id].generation != gen {
            return;
        }
        let core = &mut self.cores[id];
        let Some(req) = core.in_flight.take() else {
            return;
        };
        let busy = now - core.serve_start;
        core.total_busy += busy;
        if core.serving_at_turbo {
            core.turbo_busy += busy;
        }
        if !req.is_tick {
            self.completed_all += 1;
        }
        if self.warmed_up && !req.is_tick {
            let sojourn = now - req.arrival;
            self.latencies.record(sojourn.as_nanos());
            if let Some(log) = self.latency_log.as_mut() {
                log.push(sojourn.as_nanos());
            }
            let service = now - core.serve_start;
            let transition = req.wake_penalty.min(sojourn - service);
            let queue = (sojourn - service - transition).clamp_non_negative();
            self.transition_waits.record(transition.as_nanos());
            self.queue_waits.record(queue.as_nanos());
            self.service_times.record(service.as_nanos());
            self.completed += 1;
            if let Some(a) = self.attrib.as_mut() {
                // By construction queue + transition + service == sojourn
                // (serve_start ≥ arrival), so the span satisfies the
                // sum-to-latency invariant exactly. The current server
                // model never stalls requests on snoops (snoops cost
                // idle-core energy only), so that phase records zero.
                a.record_span(RequestSpan {
                    arrival: req.arrival,
                    completion: now,
                    queue_wait: queue,
                    exit_penalty: transition,
                    exit_state: if transition > Nanos::ZERO {
                        req.wake_state.map(trace::cstate_label)
                    } else {
                        None
                    },
                    snoop_stall: Nanos::ZERO,
                    service,
                    network_rtt: self.workload.network_rtt(),
                });
            }
        }
        self.start_service(id, now);
    }

    fn on_timer_tick(&mut self, id: usize, now: Nanos) {
        if let Some(period) = self.config.timer_tick {
            self.queue.schedule(now + period, Event::TimerTick { core: id });
        }
        self.cores[id].queue.push_back(QueuedRequest {
            arrival: now,
            service: self.config.tick_work,
            wake_penalty: Nanos::ZERO,
            wake_state: None,
            is_tick: true,
            attempt: 1,
        });
        if let Some(t) = self.telemetry.as_mut() {
            t.enqueue(id as u32, now, self.cores[id].queue.len() as u32);
        }
        if let CoreState::Idle { state } = self.cores[id].state {
            self.begin_wake(id, state, now, "timer");
        }
    }

    fn schedule_snoop(&mut self, id: usize, now: Nanos) {
        let rate = self.config.snoops.rate_per_core;
        if rate <= 0.0 {
            return;
        }
        let gap = Nanos::from_secs(-self.snoop_rng.uniform_open().ln() / rate);
        self.queue.schedule(now + gap, Event::Snoop { core: id });
    }

    fn on_snoop(&mut self, id: usize, now: Nanos) {
        self.schedule_snoop(id, now);
        let SnoopTraffic { legacy_power, aw_power, burst_duration, .. } = self.config.snoops;
        if let CoreState::Idle { state } = self.cores[id].state {
            let extra = match state {
                CState::C1 | CState::C1E => Some(legacy_power),
                CState::C6A | CState::C6AE => Some(aw_power),
                // C6 flushed its caches; C0 serves snoops in-pipeline.
                _ => None,
            };
            if let Some(p) = extra {
                let core = &mut self.cores[id];
                core.snoop_energy += p * burst_duration;
                core.snoops_served += 1;
                if let Some(t) = self.telemetry.as_mut() {
                    t.snoop(id as u32, now, trace::cstate_label(state));
                }
            }
        }
    }

    /// Schedules the client-side retry of a shed or timed-out request:
    /// jittered exponential backoff until the attempt budget runs out.
    fn schedule_retry(&mut self, now: Nanos, service: Nanos, attempt: u32) {
        let next = attempt + 1;
        if next > self.config.retry.max_attempts {
            self.degradation.retries_exhausted += 1;
            return;
        }
        // base × 2^(attempt−1), jittered over [0.5, 1.5) to decorrelate
        // retry storms.
        let exp = f64::from(1u32 << (attempt - 1).min(8));
        let jitter = 0.5 + self.retry_rng.uniform();
        let backoff = self.config.retry.base_backoff * (exp * jitter);
        self.queue.schedule(now + backoff, Event::Retry { service, attempt: next });
    }

    fn on_retry(&mut self, now: Nanos, service: Nanos, attempt: u32) {
        self.degradation.retries += 1;
        let id = self.dispatch();
        if let Some(t) = self.telemetry.as_mut() {
            t.retry(id as u32, now, attempt);
        }
        self.admit(id, now, service, attempt);
    }

    fn schedule_spurious(&mut self, id: usize, now: Nanos) {
        if let Some(gap) = self.faults.as_mut().and_then(|f| f.spurious_gap()) {
            self.queue.schedule(now + gap, Event::SpuriousWake { core: id });
        }
    }

    fn on_spurious_wake(&mut self, id: usize, now: Nanos) {
        self.schedule_spurious(id, now);
        self.note_fault(id, now, "spurious-wake");
        if let CoreState::Idle { state } = self.cores[id].state {
            // A wake with no pending work: the core pays a full exit and
            // re-entry round trip for nothing.
            self.begin_wake(id, state, now, "spurious");
        }
    }

    fn on_wake_redelivery(&mut self, id: usize, now: Nanos) {
        // Only meaningful if the core is still parked with the stranded
        // work; anything else means another wake already got through.
        if let CoreState::Idle { state } = self.cores[id].state {
            if !self.cores[id].queue.is_empty() {
                let exit = self.begin_wake(id, state, now, "redelivery");
                if let Some(req) = self.cores[id].queue.front_mut() {
                    if req.wake_state.is_none() {
                        req.wake_penalty = exit;
                        req.wake_state = Some(state);
                    }
                }
            }
        }
    }

    fn schedule_storm(&mut self, id: usize, now: Nanos) {
        if let Some(gap) = self.faults.as_mut().and_then(|f| f.storm_gap()) {
            self.queue.schedule(now + gap, Event::SnoopStorm { core: id });
        }
    }

    fn on_snoop_storm(&mut self, id: usize, now: Nanos) {
        self.schedule_storm(id, now);
        self.note_fault(id, now, "snoop-storm");
        let size = self.faults.as_ref().map_or(0, |f| f.spec().storm_size);
        let SnoopTraffic { legacy_power, aw_power, burst_duration, .. } = self.config.snoops;
        if let CoreState::Idle { state } = self.cores[id].state {
            let extra = match state {
                CState::C1 | CState::C1E => Some(legacy_power),
                CState::C6A | CState::C6AE => Some(aw_power),
                _ => None,
            };
            if let Some(p) = extra {
                let core = &mut self.cores[id];
                core.snoop_energy += p * burst_duration * f64::from(size);
                core.snoops_served += u64::from(size);
                if let Some(t) = self.telemetry.as_mut() {
                    t.snoop(id as u32, now, trace::cstate_label(state));
                }
            }
        }
    }

    fn schedule_slowdown(&mut self, now: Nanos) {
        if let Some(gap) = self.faults.as_mut().and_then(|f| f.slowdown_gap()) {
            self.queue.schedule(now + gap, Event::SlowdownStart);
        }
    }

    fn on_slowdown_start(&mut self, now: Nanos) {
        self.schedule_slowdown(now);
        self.note_fault(0, now, "slowdown");
        let duration = self.faults.as_ref().map_or(Nanos::ZERO, |f| f.spec().slowdown_duration);
        self.slowdown_until = self.slowdown_until.max(now + duration);
    }

    fn on_warmup_end(&mut self, now: Nanos) {
        for core in &mut self.cores {
            core.reset_metrics(now);
        }
        self.uncore.reset_metrics(now);
        // Measurement starts here: swap in reservoirs pre-sized for the
        // expected completions so the record path never reallocates.
        let expected = self.expected_samples();
        self.latencies = SampleSet::with_capacity(expected);
        self.transition_waits = SampleSet::with_capacity(expected);
        self.queue_waits = SampleSet::with_capacity(expected);
        self.service_times = SampleSet::with_capacity(expected);
        self.completed = 0;
        self.warmed_up = true;
    }

    fn finalize(&mut self) -> RunMetrics {
        let end = self.end;
        let mut residency_time: BTreeMap<CState, Nanos> = BTreeMap::new();
        let mut total_time = Nanos::ZERO;
        let mut energy = aw_types::Joules::ZERO;
        let mut transitions: BTreeMap<CState, u64> = BTreeMap::new();
        let mut turbo_busy = Nanos::ZERO;
        let mut total_busy = Nanos::ZERO;
        let mut snoops = 0u64;

        for core in &mut self.cores {
            let p = core.current_power;
            core.switch_power(end, p);
            core.tracker.finish(end);
            for &(state, _) in core.entries.iter() {
                // ensure states appear even if time rounds to zero
                residency_time.entry(state).or_insert(Nanos::ZERO);
            }
            for (state, t) in core.tracker.iter() {
                *residency_time.entry(*state).or_insert(Nanos::ZERO) += t;
            }
            total_time += core.tracker.total_time();
            energy += core.meter.energy() + core.snoop_energy + core.transition_energy;
            for &(s, n) in core.entries.iter() {
                *transitions.entry(s).or_insert(0) += n;
            }
            turbo_busy += core.turbo_busy;
            total_busy += core.total_busy;
            snoops += core.snoops_served;
        }

        let residencies = if total_time > Nanos::ZERO {
            ResidencyVector::new(
                residency_time.iter().map(|(&s, &t)| (s, Ratio::new((t / total_time).min(1.0)))),
            )
        } else {
            ResidencyVector::default()
        };

        let duration = self.config.duration;
        let avg_core_power = if duration > Nanos::ZERO {
            energy / duration / self.cores.len() as f64
        } else {
            MilliWatts::ZERO
        };

        let uncore_energy = self.uncore.finish(end);
        let avg_uncore_power =
            if duration > Nanos::ZERO { uncore_energy / duration } else { MilliWatts::ZERO };
        let package_residency = [
            self.uncore.residency(PackageCState::Pc0),
            self.uncore.residency(PackageCState::Pc2),
            self.uncore.residency(PackageCState::Pc6),
        ];
        let server_latency = LatencyStats::from_samples(&mut self.latencies);
        let end_to_end_latency = server_latency.offset_by(self.workload.network_rtt());
        let breakdown = LatencyBreakdown {
            transition: Nanos::new(self.transition_waits.mean().unwrap_or(0.0)),
            queue: Nanos::new(self.queue_waits.mean().unwrap_or(0.0)),
            service: Nanos::new(self.service_times.mean().unwrap_or(0.0)),
        };
        let turbo_fraction = if total_busy > Nanos::ZERO {
            Ratio::new(turbo_busy / total_busy)
        } else {
            Ratio::ZERO
        };

        // Runtime invariants: a run must account for all of its time and
        // all of its requests, no matter what faults were injected.
        if total_time > Nanos::ZERO {
            let total = residencies.total();
            self.invariants.check(residencies.is_complete(1e-6), || {
                format!("residencies sum to {total}, expected 1")
            });
        }
        let in_system: u64 = self
            .cores
            .iter()
            .map(|c| {
                c.queue.iter().filter(|r| !r.is_tick).count() as u64
                    + u64::from(c.in_flight.is_some_and(|r| !r.is_tick))
            })
            .sum();
        let accounted =
            self.completed_all + self.degradation.timeouts + self.degradation.shed + in_system;
        let arrived = self.arrivals_total;
        self.invariants.check(arrived == accounted, || {
            format!(
                "request conservation: {arrived} admitted but {accounted} accounted \
                 (completed + timed out + shed + in system)"
            )
        });

        RunMetrics {
            config: self.config.named.to_string(),
            workload: self.workload.name().to_string(),
            duration,
            cores: self.cores.len(),
            residencies,
            avg_core_power,
            server_latency,
            end_to_end_latency,
            completed: self.completed,
            offered_qps: self.workload.offered_qps(),
            achieved_qps: if duration > Nanos::ZERO {
                self.completed as f64 / duration.as_secs()
            } else {
                0.0
            },
            transitions,
            snoops_served: snoops,
            events: self.events,
            turbo_fraction,
            avg_uncore_power,
            package_residency,
            breakdown,
            degradation: self.degradation,
            // Filled by `run_to_output` after the recorders are finished.
            telemetry: None,
            attribution: None,
        }
    }
}

impl fmt::Debug for ServerSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerSim")
            .field("config", &self.config.named.to_string())
            .field("workload", &self.workload)
            .field("cores", &self.cores.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimBuilder;
    use aw_cstates::NamedConfig;

    fn light_workload(qps: f64) -> WorkloadSpec {
        WorkloadSpec::poisson("test", qps, Nanos::from_micros(3.0), 0.8)
    }

    fn short_config(named: NamedConfig) -> ServerConfig {
        ServerConfig::new(4, named).with_duration(Nanos::from_millis(80.0))
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(50_000.0), 7)
                .run()
                .into_metrics()
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.avg_core_power, b.avg_core_power);
        assert_eq!(a.server_latency.p99, b.server_latency.p99);
    }

    #[test]
    fn throughput_matches_offered_load() {
        let m = SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(100_000.0), 3)
            .run()
            .into_metrics();
        let ratio = m.achieved_qps / m.offered_qps;
        assert!((0.9..1.1).contains(&ratio), "achieved/offered = {ratio}");
    }

    #[test]
    fn residencies_sum_to_one() {
        for named in [NamedConfig::Baseline, NamedConfig::Aw, NamedConfig::NtNoC6] {
            let m = SimBuilder::new(short_config(named), light_workload(60_000.0), 11)
                .run()
                .into_metrics();
            assert!(m.residencies.is_complete(1e-6), "{named}: total {}", m.residencies.total());
        }
    }

    #[test]
    fn light_load_is_mostly_idle() {
        let m = SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(20_000.0), 5)
            .run()
            .into_metrics();
        assert!(m.residency_of(CState::C0).get() < 0.2, "{}", m.residencies);
    }

    #[test]
    fn aw_config_uses_agile_states() {
        let m = SimBuilder::new(short_config(NamedConfig::Aw), light_workload(60_000.0), 5)
            .run()
            .into_metrics();
        let agile = m.residency_of(CState::C6A) + m.residency_of(CState::C6AE);
        assert!(agile.get() > 0.3, "{}", m.residencies);
        assert_eq!(m.residency_of(CState::C1), Ratio::ZERO);
        assert_eq!(m.residency_of(CState::C1E), Ratio::ZERO);
    }

    #[test]
    fn aw_saves_power_at_light_load() {
        let baseline =
            SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(60_000.0), 9)
                .run()
                .into_metrics();
        let aw = SimBuilder::new(short_config(NamedConfig::Aw), light_workload(60_000.0), 9)
            .run()
            .into_metrics();
        let savings = aw.power_savings_vs(&baseline);
        assert!(savings.get() > 0.1, "savings {savings}");
        // ...with minimal latency impact.
        let tail = aw.tail_latency_delta_vs(&baseline);
        assert!(tail < 0.15, "tail delta {tail}");
    }

    #[test]
    fn disabled_states_are_never_entered() {
        let m =
            SimBuilder::new(short_config(NamedConfig::NtNoC6NoC1e), light_workload(40_000.0), 13)
                .run()
                .into_metrics();
        assert_eq!(m.residency_of(CState::C6), Ratio::ZERO);
        assert_eq!(m.residency_of(CState::C1E), Ratio::ZERO);
        assert!(m.residency_of(CState::C1).get() > 0.5, "{}", m.residencies);
    }

    #[test]
    fn snoops_burn_energy_in_coherent_states() {
        let cfg = short_config(NamedConfig::Baseline).with_snoops(SnoopTraffic::at_rate(50_000.0));
        let quiet =
            SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(30_000.0), 17)
                .run()
                .into_metrics();
        let noisy = SimBuilder::new(cfg, light_workload(30_000.0), 17).run().into_metrics();
        assert!(noisy.snoops_served > 0);
        assert!(noisy.avg_core_power > quiet.avg_core_power);
    }

    #[test]
    fn turbo_runs_when_credit_allows() {
        let m = SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(40_000.0), 19)
            .run()
            .into_metrics();
        // Light load banks lots of thermal credit: turbo should engage.
        assert!(m.turbo_fraction.get() > 0.5, "turbo {}", m.turbo_fraction);
        let nt =
            SimBuilder::new(short_config(NamedConfig::NtBaseline), light_workload(40_000.0), 19)
                .run()
                .into_metrics();
        assert_eq!(nt.turbo_fraction, Ratio::ZERO);
    }

    #[test]
    fn attribution_spans_match_metrics() {
        let out =
            SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(60_000.0), 21)
                .with_attribution(Nanos::from_millis(10.0))
                .run();
        let report = out.attribution.expect("attribution enabled");
        // One span per measured request.
        assert_eq!(report.spans.len() as u64, out.metrics.completed);
        assert_eq!(report.summary.requests, out.metrics.completed);
        // Phase means agree with the independent LatencyBreakdown path.
        let b = out.metrics.breakdown;
        let m = &report.summary.mean;
        assert!((m.queue.as_nanos() - b.queue.as_nanos()).abs() < 1e-6);
        assert!((m.exit_penalty.as_nanos() - b.transition.as_nanos()).abs() < 1e-6);
        assert!((m.service.as_nanos() - b.service.as_nanos()).abs() < 1e-6);
        assert_eq!(out.metrics.attribution.as_ref(), Some(&report.summary));
        // Every span satisfies the sum-to-latency invariant exactly.
        for span in &report.spans {
            assert!(span.residual().as_nanos().abs() < 1e-6, "{span:?}");
        }
        // The timeline saw traffic, power, and residency.
        let tl = &report.timeline;
        assert!(tl.windows().iter().map(|w| w.completed()).sum::<u64>() > 0);
        assert!(tl.windows().iter().any(|w| w.energy() > aw_types::Joules::ZERO));
        assert!(!tl.residency_states().is_empty());
    }

    #[test]
    fn attribution_off_yields_none() {
        let out =
            SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(60_000.0), 21)
                .run();
        assert!(out.attribution.is_none());
        assert!(out.metrics.attribution.is_none());
    }

    #[test]
    fn attribution_does_not_perturb_the_run() {
        // Attribution is pure observation: the measured metrics must be
        // bit-identical with and without it.
        let plain = SimBuilder::new(short_config(NamedConfig::Aw), light_workload(80_000.0), 27)
            .run()
            .into_metrics();
        let attributed =
            SimBuilder::new(short_config(NamedConfig::Aw), light_workload(80_000.0), 27)
                .with_attribution(Nanos::from_millis(5.0))
                .run();
        assert_eq!(plain.completed, attributed.metrics.completed);
        assert_eq!(plain.avg_core_power, attributed.metrics.avg_core_power);
        assert_eq!(plain.server_latency.p99, attributed.metrics.server_latency.p99);
    }

    #[test]
    fn inactive_fault_plan_is_invisible() {
        // A plan with all rates zero must not perturb a single bit of the
        // run: fault draws live on their own RNG streams (common random
        // numbers), and zero-rate streams are never consulted.
        let plain = SimBuilder::new(short_config(NamedConfig::Aw), light_workload(60_000.0), 7)
            .run()
            .into_metrics();
        let faulted = SimBuilder::new(short_config(NamedConfig::Aw), light_workload(60_000.0), 7)
            .with_faults(FaultPlan::none())
            .run()
            .into_metrics();
        assert_eq!(format!("{plain:?}"), format!("{faulted:?}"));
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let run = || {
            let plan = FaultPlan::parse("seed=3,wake-fail=0.2,relock=0.1,lost-wake=0.05")
                .expect("valid spec");
            SimBuilder::new(short_config(NamedConfig::Aw), light_workload(60_000.0), 7)
                .with_faults(plan)
                .run()
                .into_metrics()
        };
        let a = run();
        let b = run();
        assert!(a.degradation.faults_injected > 0, "{}", a.degradation);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn bounded_queue_sheds_under_overload() {
        let cfg = short_config(NamedConfig::Baseline).with_queue_cap(2);
        let m = SimBuilder::new(cfg, light_workload(1_200_000.0), 41).run().into_metrics();
        assert!(m.degradation.shed > 0, "{}", m.degradation);
        assert!(m.degradation.retries > 0, "{}", m.degradation);
        assert!(m.degradation.retries_exhausted > 0, "{}", m.degradation);
    }

    #[test]
    fn request_timeouts_shed_expired_work() {
        let cfg =
            short_config(NamedConfig::Baseline).with_request_timeout(Nanos::from_micros(30.0));
        let m = SimBuilder::new(cfg, light_workload(1_200_000.0), 43).run().into_metrics();
        assert!(m.degradation.timeouts > 0, "{}", m.degradation);
    }

    #[test]
    fn heavier_load_more_c0() {
        let light =
            SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(30_000.0), 23)
                .run()
                .into_metrics();
        let heavy =
            SimBuilder::new(short_config(NamedConfig::Baseline), light_workload(300_000.0), 23)
                .run()
                .into_metrics();
        assert!(heavy.residency_of(CState::C0) > light.residency_of(CState::C0));
        assert!(heavy.avg_core_power > light.avg_core_power);
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;
    use crate::SimBuilder;
    use aw_cstates::NamedConfig;

    fn run(named: NamedConfig, qps: f64, seed: u64) -> RunMetrics {
        let cfg = ServerConfig::new(4, named).with_duration(Nanos::from_millis(80.0));
        let w = WorkloadSpec::poisson("bd", qps, Nanos::from_micros(4.0), 0.8);
        SimBuilder::new(cfg, w, seed).run().into_metrics()
    }

    #[test]
    fn breakdown_components_sum_to_mean_latency() {
        let m = run(NamedConfig::Baseline, 80_000.0, 31);
        let total = m.breakdown.total().as_nanos();
        let mean = m.server_latency.mean.as_nanos();
        assert!((total - mean).abs() / mean < 0.01, "{total} vs {mean}");
    }

    #[test]
    fn transition_share_shrinks_under_c6a() {
        // The Sec. 7.2 story quantified: replacing the C1E time with C6A
        // (C1-class exits) cuts the transition component of mean latency
        // several-fold versus the C1E-heavy baseline. Note C6AE would
        // not show this — it inherits C1E's 10 µs software budget.
        let base = run(NamedConfig::NtBaseline, 60_000.0, 33);
        let cfg = ServerConfig::new(4, NamedConfig::NtAw)
            .with_cstates(aw_cstates::CStateConfig::new([CState::C6A], false))
            .with_duration(Nanos::from_millis(80.0));
        let w = WorkloadSpec::poisson("bd", 60_000.0, Nanos::from_micros(4.0), 0.8);
        let aw = SimBuilder::new(cfg, w, 33).run().into_metrics();
        assert!(
            aw.breakdown.transition.as_nanos() < 0.5 * base.breakdown.transition.as_nanos(),
            "aw {} vs base {}",
            aw.breakdown.transition,
            base.breakdown.transition
        );
        // Service time is workload-determined and barely changes.
        let svc_ratio = aw.breakdown.service.as_nanos() / base.breakdown.service.as_nanos();
        assert!((0.9..1.1).contains(&svc_ratio), "{svc_ratio}");
    }

    #[test]
    fn no_c1e_config_has_small_transition_component() {
        let lean = run(NamedConfig::NtNoC6NoC1e, 60_000.0, 35);
        // C1 exit is 1 µs; with most requests hitting idle cores the
        // transition share stays near or below that.
        assert!(
            lean.breakdown.transition <= Nanos::from_micros(1.1),
            "{}",
            lean.breakdown.transition
        );
    }

    #[test]
    fn breakdown_components_nonnegative() {
        for named in [NamedConfig::Baseline, NamedConfig::Aw, NamedConfig::NtNoC6] {
            let m = run(named, 150_000.0, 37);
            assert!(m.breakdown.transition >= Nanos::ZERO);
            assert!(m.breakdown.queue >= Nanos::ZERO);
            assert!(m.breakdown.service > Nanos::ZERO);
        }
    }
}
