//! Idle-interval records captured for offline opportunity analysis.

use aw_cstates::CState;
use aw_types::Nanos;

/// One completed per-core idle round trip (entry transition → residency
/// → exit transition), captured on the wake path when idle analysis is
/// enabled (see [`crate::SimBuilder::with_idle_analysis`]).
///
/// Capture is pure observation: records are appended as the simulation
/// runs and never read back, so an instrumented run is bit-identical to
/// an unobserved one. `duration` is the same round-trip time the
/// governor observes through `observe_idle` — entry latency plus
/// residency plus exit latency, including any injected wake disruption —
/// so offline analysis scores governors against exactly the signal they
/// learned from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleInterval {
    /// The core that idled.
    pub core: usize,
    /// When the idle period began (the governor decision point).
    pub start: Nanos,
    /// Full round-trip duration (entry + residency + exit).
    pub duration: Nanos,
    /// The idle state the governor chose.
    pub chosen: CState,
    /// The governor's idle-duration prediction at selection time: the
    /// predictor's own estimate, falling back to the oracle hint for
    /// hinted governors (`None` for non-predictive, unhinted
    /// governors).
    pub predicted: Option<Nanos>,
    /// `true` when the interval began inside the measured window (at or
    /// after warm-up end); analysis normally ignores unmeasured
    /// intervals, matching the metric reset.
    pub measured: bool,
}

impl IdleInterval {
    /// Signed prediction error (`predicted − actual`) in nanoseconds,
    /// `None` when no prediction was recorded. Negative values mean the
    /// governor under-predicted (the pessimistic default for
    /// latency-critical streams).
    #[must_use]
    pub fn prediction_error(&self) -> Option<Nanos> {
        self.predicted.map(|p| p - self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_error_is_signed() {
        let mut iv = IdleInterval {
            core: 0,
            start: Nanos::ZERO,
            duration: Nanos::from_micros(10.0),
            chosen: CState::C1,
            predicted: Some(Nanos::from_micros(8.0)),
            measured: true,
        };
        assert_eq!(iv.prediction_error(), Some(Nanos::from_micros(-2.0)));
        iv.predicted = None;
        assert_eq!(iv.prediction_error(), None);
    }
}
