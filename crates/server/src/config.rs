//! Simulation configuration: machine shape, C-state setup, governor,
//! dispatch policy, snoop traffic, and run window.

use aw_cstates::{
    CStateCatalog, CStateConfig, IdleGovernor, LadderGovernor, MenuGovernor, NamedConfig,
    OracleGovernor,
};
use aw_hw::HardwareModel;
use aw_types::{Joules, MegaHertz, MilliWatts, Nanos};

/// How arriving requests are routed to cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dispatch {
    /// Round-robin across cores (the default; models evenly pinned
    /// connections).
    RoundRobin,
    /// Uniformly random core per request.
    Random,
    /// The core with the shortest queue (ties to the lowest index).
    LeastLoaded,
}

/// Which idle-governor policy the OS runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorKind {
    /// Linux-menu-style EWMA predictor (the default).
    Menu,
    /// Step-up/step-down ladder.
    Ladder,
    /// Oracle told the true idle duration (upper bound).
    Oracle,
}

impl GovernorKind {
    /// Instantiates the governor.
    #[must_use]
    pub fn build(self) -> Box<dyn IdleGovernor> {
        match self {
            GovernorKind::Menu => Box::new(MenuGovernor::new()),
            GovernorKind::Ladder => Box::new(LadderGovernor::new()),
            GovernorKind::Oracle => Box::new(OracleGovernor::new()),
        }
    }
}

/// Inter-core coherence (snoop) traffic parameters (Sec. 7.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnoopTraffic {
    /// Poisson snoop arrival rate per idle core, in snoops per second.
    pub rate_per_core: f64,
    /// Extra power above C1 while servicing snoops in a legacy shallow
    /// state (~50 mW: L1/L2 clock-ungated).
    pub legacy_power: MilliWatts,
    /// Extra power above C6A while servicing snoops in an AW state
    /// (~120 mW: arrays out of sleep mode).
    pub aw_power: MilliWatts,
    /// Duration the cache domain stays active per snoop burst.
    pub burst_duration: Nanos,
}

impl SnoopTraffic {
    /// No snoop traffic.
    #[must_use]
    pub fn none() -> Self {
        SnoopTraffic {
            rate_per_core: 0.0,
            legacy_power: MilliWatts::new(50.0),
            aw_power: MilliWatts::new(120.0),
            burst_duration: Nanos::from_micros(1.0),
        }
    }

    /// Snoop traffic at `rate_per_core` snoops/s with the paper's power
    /// deltas.
    #[must_use]
    pub fn at_rate(rate_per_core: f64) -> Self {
        assert!(rate_per_core >= 0.0, "snoop rate must be non-negative");
        SnoopTraffic { rate_per_core, ..SnoopTraffic::none() }
    }

    /// `true` if any snoop traffic is generated.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rate_per_core > 0.0
    }
}

/// Client retry behaviour for shed or timed-out requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum submission attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff before the first retry; doubles per attempt, with
    /// ±50% deterministic jitter drawn from the sim's retry stream.
    pub base_backoff: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_backoff: Nanos::from_micros(50.0) }
    }
}

/// Per-core circuit-breaker parameters guarding the agile exit path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive agile-wake failures before the breaker trips and the
    /// core's governor demotes C6A/C6AE to their legacy counterparts.
    pub threshold: u32,
    /// How long the breaker stays open before re-arming.
    pub cooldown: Nanos,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { threshold: 4, cooldown: Nanos::from_millis(1.0) }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The hardware model this configuration was built from: the
    /// provenance for the catalog snapshot below, and the live source
    /// of uncore power and CCX topology during the run. The catalog
    /// itself stays a snapshot so experiments can still override
    /// individual rows (e.g. PPA-derived C6A power) via
    /// [`ServerConfig::with_catalog`].
    pub hw: &'static HardwareModel,
    /// Number of physical cores serving requests.
    pub cores: usize,
    /// Named C-state configuration (enable mask + Turbo flag).
    pub named: NamedConfig,
    /// The C-state enable mask (derived from `named`, overridable).
    pub cstates: CStateConfig,
    /// The C-state parameter catalog.
    pub catalog: CStateCatalog,
    /// Idle-governor policy.
    pub governor: GovernorKind,
    /// Request dispatch policy.
    pub dispatch: Dispatch,
    /// Base (P1) core frequency.
    pub base_freq: MegaHertz,
    /// Maximum Turbo frequency.
    pub turbo_freq: MegaHertz,
    /// Snoop traffic parameters.
    pub snoops: SnoopTraffic,
    /// Simulated duration (after warm-up).
    pub duration: Nanos,
    /// Warm-up period excluded from metrics.
    pub warmup: Nanos,
    /// Extra service-time stretch from AW's power-gate IR drop (≈1% ×
    /// workload scalability), applied only for AW configurations.
    pub aw_frequency_degradation: f64,
    /// Hidden energy burned per idle-state round trip (wake in-rush,
    /// clock restart, PLL stabilization) that residency counters cannot
    /// see. This is what keeps the Sec. 6.3 analytical-model validation
    /// below 100%: Eq. 2 prices residencies, not transitions.
    pub transition_energy: Joules,
    /// Optional per-core OS timer tick: a periodic kernel interrupt that
    /// wakes each core and runs [`ServerConfig::tick_work`] of kernel
    /// time. Real kernels' ticks chop long idle periods, which is a big
    /// part of why production residency profiles stay shallower than
    /// queueing theory alone predicts. `None` (default) disables it.
    pub timer_tick: Option<Nanos>,
    /// Kernel work per timer tick.
    pub tick_work: Nanos,
    /// Bound on each core's run-queue depth; arrivals beyond it are shed
    /// (and retried per [`ServerConfig::retry`]). `None` = unbounded.
    pub queue_cap: Option<usize>,
    /// Maximum time a request may wait in queue before it is abandoned
    /// and retried. `None` = no timeout.
    pub request_timeout: Option<Nanos>,
    /// Client retry/backoff behaviour for shed and timed-out requests.
    pub retry: RetryPolicy,
    /// Circuit-breaker parameters for the agile exit path.
    pub breaker: BreakerPolicy,
}

impl ServerConfig {
    /// A Xeon-4114-shaped configuration: `cores` cores on the
    /// `skylake-sp` hardware model (2.2 GHz base / 3.0 GHz Turbo), menu
    /// governor, round-robin dispatch, 1 s simulated with 100 ms
    /// warm-up, no snoop traffic.
    #[must_use]
    pub fn new(cores: usize, named: NamedConfig) -> Self {
        Self::for_hw(HardwareModel::skylake_sp(), cores, named)
    }

    /// A configuration for `cores` cores of the given hardware model:
    /// the model's full (AW-derived) catalog, base/Turbo frequencies,
    /// and the named enable mask restricted to the states the model
    /// actually has — on Zen 2 (no C1E) `Baseline` becomes C1+C6 and
    /// `AW` becomes C6A+C6.
    ///
    /// The catalog always carries the AW states so AW configurations
    /// validate; legacy configurations simply never select them.
    #[must_use]
    pub fn for_hw(hw: &'static HardwareModel, cores: usize, named: NamedConfig) -> Self {
        assert!(cores > 0, "need at least one core");
        ServerConfig {
            hw,
            cores,
            named,
            cstates: hw.restrict(&named.config()),
            catalog: hw.catalog(),
            governor: GovernorKind::Menu,
            dispatch: Dispatch::RoundRobin,
            base_freq: hw.base_freq,
            turbo_freq: hw.turbo_freq,
            snoops: SnoopTraffic::none(),
            duration: Nanos::from_secs(1.0),
            warmup: Nanos::from_millis(100.0),
            aw_frequency_degradation: 0.01,
            transition_energy: Joules::new(10e-6),
            timer_tick: None,
            tick_work: Nanos::from_micros(5.0),
            queue_cap: None,
            request_timeout: None,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
        }
    }

    /// Moves this configuration onto another hardware model, replacing
    /// the model-derived pieces (catalog, enable mask, frequencies)
    /// while keeping everything operational — duration, governor,
    /// dispatch, overload protection, fault policies. The enable mask
    /// is re-derived from [`ServerConfig::named`], so a custom
    /// [`ServerConfig::with_cstates`] override does not survive the
    /// move (it may name states the new model lacks). Mixed fleets use
    /// this to stamp one prototype onto per-server hardware.
    #[must_use]
    pub fn rehosted(&self, hw: &'static HardwareModel) -> Self {
        let mut c = self.clone();
        c.hw = hw;
        c.catalog = hw.catalog();
        c.cstates = hw.restrict(&self.named.config());
        c.base_freq = hw.base_freq;
        c.turbo_freq = hw.turbo_freq;
        c
    }

    /// Sets the simulated duration (post-warm-up).
    #[must_use]
    pub fn with_duration(mut self, duration: Nanos) -> Self {
        assert!(duration > Nanos::ZERO, "duration must be positive");
        self.duration = duration;
        // Keep warm-up proportionate for short test runs.
        self.warmup = self.warmup.min(duration * 0.2);
        self
    }

    /// Sets the warm-up period.
    #[must_use]
    pub fn with_warmup(mut self, warmup: Nanos) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the governor policy.
    #[must_use]
    pub fn with_governor(mut self, governor: GovernorKind) -> Self {
        self.governor = governor;
        self
    }

    /// Sets the dispatch policy.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Sets the snoop traffic.
    #[must_use]
    pub fn with_snoops(mut self, snoops: SnoopTraffic) -> Self {
        self.snoops = snoops;
        self
    }

    /// Enables a per-core OS timer tick with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    #[must_use]
    pub fn with_timer_tick(mut self, period: Nanos) -> Self {
        assert!(period > Nanos::ZERO, "tick period must be positive");
        self.timer_tick = Some(period);
        self
    }

    /// Overrides the C-state catalog (e.g., PPA-derived C6A power).
    #[must_use]
    pub fn with_catalog(mut self, catalog: CStateCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Overrides the C-state enable mask while keeping the named label
    /// (for configurations the paper uses that aren't in
    /// [`NamedConfig`], e.g. MySQL's "C1 + C6 only" baseline).
    #[must_use]
    pub fn with_cstates(mut self, cstates: CStateConfig) -> Self {
        self.cstates = cstates;
        self
    }

    /// Bounds each core's run queue at `cap` requests; excess arrivals
    /// are shed and retried per the [`RetryPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue cap must be positive");
        self.queue_cap = Some(cap);
        self
    }

    /// Abandons requests that wait in queue longer than `timeout`.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is not positive.
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Nanos) -> Self {
        assert!(timeout > Nanos::ZERO, "request timeout must be positive");
        self.request_timeout = Some(timeout);
        self
    }

    /// Overrides the client retry/backoff policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.max_attempts > 0, "need at least one attempt");
        self.retry = retry;
        self
    }

    /// Overrides the circuit-breaker parameters.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        assert!(breaker.threshold > 0, "breaker threshold must be positive");
        self.breaker = breaker;
        self
    }

    /// `true` if this run models AW hardware (and thus its ~1% frequency
    /// degradation applies).
    #[must_use]
    pub fn is_aw(&self) -> bool {
        self.named.is_aw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_cstates::CState;

    #[test]
    fn default_shape_is_xeon_4114() {
        let c = ServerConfig::new(10, NamedConfig::Baseline);
        assert_eq!(c.cores, 10);
        assert_eq!(c.base_freq, MegaHertz::from_ghz(2.2));
        assert_eq!(c.turbo_freq, MegaHertz::from_ghz(3.0));
        assert!(c.cstates.turbo());
        assert!(c.cstates.is_enabled(CState::C6));
    }

    #[test]
    fn catalog_validates_for_all_named_configs() {
        for named in NamedConfig::ALL {
            let c = ServerConfig::new(2, named);
            assert_eq!(c.cstates.validate(&c.catalog), Ok(()), "{named}");
        }
    }

    #[test]
    fn builders_chain() {
        let c = ServerConfig::new(2, NamedConfig::Aw)
            .with_duration(Nanos::from_millis(10.0))
            .with_governor(GovernorKind::Oracle)
            .with_dispatch(Dispatch::LeastLoaded)
            .with_snoops(SnoopTraffic::at_rate(1_000.0));
        assert_eq!(c.duration, Nanos::from_millis(10.0));
        assert!(c.warmup <= c.duration * 0.2);
        assert_eq!(c.governor, GovernorKind::Oracle);
        assert!(c.snoops.is_active());
        assert!(c.is_aw());
    }

    #[test]
    fn governor_kinds_build() {
        for kind in [GovernorKind::Menu, GovernorKind::Ladder, GovernorKind::Oracle] {
            let _ = kind.build();
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn rejects_zero_cores() {
        let _ = ServerConfig::new(0, NamedConfig::Baseline);
    }

    #[test]
    fn default_is_skylake_sp() {
        let c = ServerConfig::new(4, NamedConfig::Aw);
        let h = ServerConfig::for_hw(HardwareModel::skylake_sp(), 4, NamedConfig::Aw);
        assert_eq!(c.hw.name, "skylake-sp");
        assert_eq!(c.catalog, h.catalog);
        assert_eq!(c.cstates, h.cstates);
        assert_eq!(c.base_freq, h.base_freq);
        assert_eq!(c.turbo_freq, h.turbo_freq);
    }

    #[test]
    fn for_hw_zen2_restricts_menu() {
        use aw_cstates::CState;
        let c = ServerConfig::for_hw(HardwareModel::zen2(), 8, NamedConfig::Baseline);
        assert_eq!(c.base_freq, MegaHertz::from_ghz(2.5));
        assert!(c.cstates.is_enabled(CState::C1));
        assert!(!c.cstates.is_enabled(CState::C1E));
        assert!(c.cstates.is_enabled(CState::C6));
        assert_eq!(c.cstates.validate(&c.catalog), Ok(()));
        let aw = ServerConfig::for_hw(HardwareModel::zen2(), 8, NamedConfig::Aw);
        assert!(aw.cstates.is_enabled(CState::C6A));
        assert!(!aw.cstates.is_enabled(CState::C6AE));
    }

    #[test]
    fn rehosted_keeps_operational_knobs() {
        let c = ServerConfig::new(4, NamedConfig::Aw)
            .with_duration(Nanos::from_millis(10.0))
            .with_governor(GovernorKind::Oracle)
            .with_queue_cap(64);
        let z = c.rehosted(HardwareModel::zen2());
        assert_eq!(z.hw.name, "zen2");
        assert_eq!(z.duration, c.duration);
        assert_eq!(z.governor, GovernorKind::Oracle);
        assert_eq!(z.queue_cap, Some(64));
        assert_eq!(z.base_freq, MegaHertz::from_ghz(2.5));
        assert_eq!(z.cstates.validate(&z.catalog), Ok(()));
        // Round-tripping back to skylake restores the original menu.
        let back = z.rehosted(HardwareModel::skylake_sp());
        assert_eq!(back.catalog, c.catalog);
        assert_eq!(back.cstates, c.cstates);
    }
}
