//! Workload specification: the arrival process and service-time
//! distribution a simulation run is driven by.

use std::fmt;
use std::sync::Arc;

use aw_sim::{Distribution, Exponential, SimRng};
use aw_types::Nanos;

/// A workload: an open-loop arrival process plus a service-time
/// distribution, with the metadata the power model needs.
///
/// Concrete workload models (Memcached/ETC, Kafka, MySQL OLTP, the
/// validation loads) live in the `aw-workloads` crate and construct
/// `WorkloadSpec`s; the simulator is agnostic to what the distributions
/// represent.
#[derive(Clone)]
pub struct WorkloadSpec {
    name: String,
    /// Inter-arrival gaps in nanoseconds (server-wide).
    interarrival: Arc<dyn Distribution>,
    /// Per-request service time in nanoseconds at base frequency.
    service: Arc<dyn Distribution>,
    /// Fractional performance change per fractional frequency change
    /// (Sec. 6.2 footnote 8): 1.0 = fully compute-bound.
    frequency_scalability: f64,
    /// Fixed network round-trip added to server-side latency for
    /// end-to-end reporting (the paper measures 117 µs).
    network_rtt: Nanos,
}

impl WorkloadSpec {
    /// Creates a workload from explicit distributions.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_scalability` is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        interarrival: Arc<dyn Distribution>,
        service: Arc<dyn Distribution>,
        frequency_scalability: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&frequency_scalability),
            "frequency scalability must be in [0, 1]"
        );
        WorkloadSpec {
            name: name.into(),
            interarrival,
            service,
            frequency_scalability,
            network_rtt: Nanos::from_micros(117.0),
        }
    }

    /// A Poisson arrival process at `qps` requests per second with
    /// exponentially distributed service around `mean_service`.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not positive or `mean_service` is not positive.
    #[must_use]
    pub fn poisson(
        name: impl Into<String>,
        qps: f64,
        mean_service: Nanos,
        frequency_scalability: f64,
    ) -> Self {
        assert!(qps > 0.0, "offered load must be positive");
        assert!(mean_service > Nanos::ZERO, "service time must be positive");
        WorkloadSpec::new(
            name,
            Arc::new(Exponential::with_mean(1e9 / qps)),
            Arc::new(Exponential::with_mean(mean_service.as_nanos())),
            frequency_scalability,
        )
    }

    /// Workload name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Draws the gap to the next arrival.
    #[must_use]
    pub fn next_gap(&self, rng: &mut SimRng) -> Nanos {
        Nanos::new(self.interarrival.sample(rng))
    }

    /// Draws a service time (at base frequency).
    #[must_use]
    pub fn next_service(&self, rng: &mut SimRng) -> Nanos {
        Nanos::new(self.service.sample(rng))
    }

    /// Mean offered load in requests per second.
    #[must_use]
    pub fn offered_qps(&self) -> f64 {
        1e9 / self.interarrival.mean()
    }

    /// Mean service time at base frequency.
    #[must_use]
    pub fn mean_service(&self) -> Nanos {
        Nanos::new(self.service.mean())
    }

    /// The workload's frequency scalability.
    #[must_use]
    pub fn frequency_scalability(&self) -> f64 {
        self.frequency_scalability
    }

    /// The fixed network round-trip for end-to-end latency reporting.
    #[must_use]
    pub fn network_rtt(&self) -> Nanos {
        self.network_rtt
    }

    /// Returns a copy with a different network round-trip.
    #[must_use]
    pub fn with_network_rtt(mut self, rtt: Nanos) -> Self {
        self.network_rtt = rtt;
        self
    }

    /// Returns a copy with every service time stretched by `factor`
    /// (> 1 models running at a lower core frequency: the Fig. 8d
    /// frequency-scalability experiment stretches service by
    /// `1 + scalability × Δf/f`).
    #[must_use]
    pub fn scaled_service(&self, factor: f64) -> WorkloadSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        #[derive(Debug)]
        struct Scaled {
            inner: Arc<dyn Distribution>,
            factor: f64,
        }
        impl Distribution for Scaled {
            fn sample(&self, rng: &mut SimRng) -> f64 {
                self.inner.sample(rng) * self.factor
            }
            fn mean(&self) -> f64 {
                self.inner.mean() * self.factor
            }
        }
        WorkloadSpec {
            name: self.name.clone(),
            interarrival: Arc::clone(&self.interarrival),
            service: Arc::new(Scaled { inner: Arc::clone(&self.service), factor }),
            frequency_scalability: self.frequency_scalability,
            network_rtt: self.network_rtt,
        }
    }

    /// Returns a copy with the offered load scaled by `factor` (a sweep
    /// helper; inter-arrival gaps shrink by the same factor).
    #[must_use]
    pub fn scaled_qps(&self, factor: f64) -> WorkloadSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let qps = self.offered_qps() * factor;
        WorkloadSpec {
            name: self.name.clone(),
            interarrival: Arc::new(Exponential::with_mean(1e9 / qps)),
            service: Arc::clone(&self.service),
            frequency_scalability: self.frequency_scalability,
            network_rtt: self.network_rtt,
        }
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .field("offered_qps", &self.offered_qps())
            .field("mean_service", &self.mean_service())
            .field("frequency_scalability", &self.frequency_scalability)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_spec_moments() {
        let w = WorkloadSpec::poisson("w", 100_000.0, Nanos::from_micros(2.0), 0.5);
        assert!((w.offered_qps() - 100_000.0).abs() < 1e-6);
        assert_eq!(w.mean_service(), Nanos::from_micros(2.0));
        assert_eq!(w.frequency_scalability(), 0.5);
    }

    #[test]
    fn sampled_gaps_match_rate() {
        let w = WorkloadSpec::poisson("w", 1_000_000.0, Nanos::from_micros(1.0), 0.5);
        let mut rng = SimRng::seed(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| w.next_gap(&mut rng).as_nanos()).sum::<f64>() / f64::from(n);
        assert!((mean - 1_000.0).abs() < 30.0, "mean gap {mean}");
    }

    #[test]
    fn qps_scaling() {
        let w = WorkloadSpec::poisson("w", 100_000.0, Nanos::from_micros(2.0), 0.5);
        let w2 = w.scaled_qps(3.0);
        assert!((w2.offered_qps() - 300_000.0).abs() < 1e-6);
        assert_eq!(w2.mean_service(), w.mean_service());
    }

    #[test]
    fn network_rtt_default_matches_paper() {
        let w = WorkloadSpec::poisson("w", 1_000.0, Nanos::from_micros(2.0), 0.5);
        assert_eq!(w.network_rtt(), Nanos::from_micros(117.0));
        let w2 = w.with_network_rtt(Nanos::ZERO);
        assert_eq!(w2.network_rtt(), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "scalability")]
    fn rejects_bad_scalability() {
        let _ = WorkloadSpec::poisson("w", 1_000.0, Nanos::from_micros(2.0), 1.5);
    }
}
