//! # aw-server — a discrete-event multi-core server simulator
//!
//! The testbed substitute for the paper's 2× Xeon Silver 4114 cluster: an
//! open-loop request stream is dispatched across a configurable number of
//! cores, each of which runs the full C-state life cycle — idle-governor
//! decisions, entry/exit transition latencies, wake-on-interrupt, snoop
//! servicing, Turbo thermal capacitance, and per-state energy integration.
//!
//! The simulator's outputs are exactly the observables the paper's
//! evaluation consumes: per-C-state residencies, transition counts,
//! average/tail request latency, and average power.
//!
//! # Examples
//!
//! ```
//! use aw_server::{ServerConfig, SimBuilder, WorkloadSpec};
//! use aw_cstates::NamedConfig;
//! use aw_types::Nanos;
//!
//! // A light Poisson load on a 4-core server with the legacy baseline:
//! let workload = WorkloadSpec::poisson(
//!     "toy",
//!     50_000.0,                     // 50 K requests/s offered
//!     Nanos::from_micros(3.0),      // ~3 µs of service each
//!     0.8,                          // frequency scalability
//! );
//! let config = ServerConfig::new(4, NamedConfig::Baseline)
//!     .with_duration(Nanos::from_millis(50.0));
//! let metrics = SimBuilder::new(config, workload, 42).run().into_metrics();
//!
//! // The server is mostly idle and spends that time in shallow states:
//! assert!(metrics.residency_of(aw_cstates::CState::C0).get() < 0.3);
//! assert!(metrics.completed > 1_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod config;
mod core;
mod idle;
mod metrics;
mod sim;
mod thermal;
pub mod trace;
mod uncore;
mod workload;

pub use builder::{default_idle_skip, set_default_idle_skip, SimBuilder};
pub use config::{BreakerPolicy, Dispatch, GovernorKind, RetryPolicy, ServerConfig, SnoopTraffic};
pub use core::{CoreState, SimCore};
pub use idle::IdleInterval;
pub use metrics::{DegradationStats, LatencyBreakdown, LatencyStats, RunMetrics};
pub use sim::{RunOutput, ServerSim};
pub use thermal::ThermalModel;
pub use uncore::{PackageCState, UncoreModel, UncorePower};
// The hardware-model surface, re-exported so simulator users don't need
// a separate aw-hw dependency for the common path.
pub use aw_hw::{CcxSpec, HardwareModel};
pub use workload::WorkloadSpec;
