#!/usr/bin/env bash
# One-shot verification gate: formatting, release build, full test suite
# (unit + doc), a warning-free clippy pass, and an end-to-end smoke of
# the latency-attribution example. CI and pre-commit both run exactly
# this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test --doc"
cargo test -q --workspace --doc

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> latency_attribution example smoke"
out=$(cargo run -q --release --example latency_attribution -- --quick)
echo "$out" | grep -q "Latency attribution" || {
    echo "verify: example printed no attribution table" >&2
    exit 1
}
echo "$out" | grep -Eq "SLO p99<.*: (MET|VIOLATED)" || {
    echo "verify: example printed no SLO verdict" >&2
    exit 1
}

echo "==> chaos_faults example smoke"
out=$(cargo run -q --release --example chaos_faults)
echo "$out" | grep -q "fault plan: seed=7" || {
    echo "verify: chaos example printed no fault plan" >&2
    exit 1
}
echo "$out" | grep -q "faults injected" || {
    echo "verify: chaos example printed no degradation table" >&2
    exit 1
}
echo "$out" | grep -q "invariants: OK" || {
    echo "verify: chaos run violated invariants" >&2
    exit 1
}

echo "==> parallel determinism smoke (--jobs 2 vs --jobs 1)"
serial=$(cargo run -q --release -p aw-cli -- fig 8 --quick --jobs 1)
parallel=$(cargo run -q --release -p aw-cli -- fig 8 --quick --jobs 2)
if [ "$serial" != "$parallel" ]; then
    echo "verify: fig 8 output differs between --jobs 1 and --jobs 2" >&2
    diff <(echo "$serial") <(echo "$parallel") >&2 || true
    exit 1
fi

echo "==> idle-skip equivalence smoke (--no-idle-skip vs default)"
skip_on=$(cargo run -q --release -p aw-cli -- fig 8 --quick --jobs 1)
skip_off=$(cargo run -q --release -p aw-cli -- fig 8 --quick --jobs 1 --no-idle-skip)
if [ "$skip_on" != "$skip_off" ]; then
    echo "verify: fig 8 output differs with --no-idle-skip (the fast path is not pure)" >&2
    diff <(echo "$skip_on") <(echo "$skip_off") >&2 || true
    exit 1
fi

echo "==> fleet smoke (packing, --jobs 1 vs --jobs 8)"
fleet_serial=$(cargo run -q --release -p aw-cli -- fleet --servers 4 --policy packing --autoscale --diurnal 0.5 --jobs 1)
fleet_parallel=$(cargo run -q --release -p aw-cli -- fleet --servers 4 --policy packing --autoscale --diurnal 0.5 --jobs 8)
if [ "$fleet_serial" != "$fleet_parallel" ]; then
    echo "verify: fleet output differs between --jobs 1 and --jobs 8" >&2
    diff <(echo "$fleet_serial") <(echo "$fleet_parallel") >&2 || true
    exit 1
fi
echo "$fleet_serial" | grep -q "policy packing" || {
    echo "verify: fleet report missing its policy line" >&2
    exit 1
}
echo "$fleet_serial" | grep -q "SLO:" || {
    echo "verify: fleet report missing its SLO line" >&2
    exit 1
}

echo "==> fleet chaos smoke (--fleet-faults, --jobs 1 vs --jobs 8)"
chaos_cmd=(cargo run -q --release -p aw-cli -- fleet --servers 4 --epochs 8 --autoscale \
    --fleet-faults "crash-at=2:0,down-epochs=2,unpark-fail=0.2")
chaos_serial=$("${chaos_cmd[@]}" --jobs 1)
chaos_parallel=$("${chaos_cmd[@]}" --jobs 8)
if [ "$chaos_serial" != "$chaos_parallel" ]; then
    echo "verify: chaotic fleet output differs between --jobs 1 and --jobs 8" >&2
    diff <(echo "$chaos_serial") <(echo "$chaos_parallel") >&2 || true
    exit 1
fi
echo "$chaos_serial" | grep -q "chaos:" || {
    echo "verify: chaotic fleet report missing its degradation ledger" >&2
    exit 1
}
echo "$chaos_serial" | grep -q "replay: agilewatts fleet --seed" || {
    echo "verify: chaotic fleet report printed no replay hint" >&2
    exit 1
}
chaos_noskip=$("${chaos_cmd[@]}" --jobs 1 --no-idle-skip)
if [ "$chaos_serial" != "$chaos_noskip" ]; then
    echo "verify: chaotic fleet output differs with --no-idle-skip" >&2
    diff <(echo "$chaos_serial") <(echo "$chaos_noskip") >&2 || true
    exit 1
fi
# Artifact replay round-trip: the example replays its FleetFailureArtifact
# and asserts bit-identity (plus the p99 spike/recovery arc) internally.
chaos_example=$(cargo run -q --release --example fleet_chaos)
echo "$chaos_example" | grep -q "replay: OK" || {
    echo "verify: fleet_chaos example replay failed" >&2
    exit 1
}
echo "$chaos_example" | grep -q "byte-identical at --jobs 1/2/8" || {
    echo "verify: fleet_chaos example skipped its determinism ladder" >&2
    exit 1
}

echo "==> watch headless determinism smoke"
watch_cmd=(cargo run -q --release -p aw-cli -- watch --headless --frames 3 --seed 42 --servers 4 --autoscale --diurnal 0.5)
watch_a=$("${watch_cmd[@]}" --jobs 1)
watch_b=$("${watch_cmd[@]}" --jobs 1)
if [ "$watch_a" != "$watch_b" ]; then
    echo "verify: watch --headless differs between two identical runs" >&2
    diff <(echo "$watch_a") <(echo "$watch_b") >&2 || true
    exit 1
fi
watch_par=$("${watch_cmd[@]}" --jobs 8)
if [ "$watch_a" != "$watch_par" ]; then
    echo "verify: watch --headless differs between --jobs 1 and --jobs 8" >&2
    diff <(echo "$watch_a") <(echo "$watch_par") >&2 || true
    exit 1
fi
echo "$watch_a" | grep -q "=== frame 2 ===" || {
    echo "verify: watch emitted fewer frames than requested" >&2
    exit 1
}
echo "$watch_a" | grep -q "\[Power\]" || {
    echo "verify: watch frame missing its tab bar" >&2
    exit 1
}
echo "$watch_a" | grep -q "Residency heatmap" || {
    echo "verify: watch frame missing the residency heatmap" >&2
    exit 1
}

echo "==> hardware-model gates (--hw)"
# The explicit default spelling must stay byte-identical to the seed
# goldens -- any Skylake-SP calibration drift fails here.
cargo run -q --release -p aw-cli -- fig 8 --quick --hw skylake-sp --jobs 2 >target/verify_sky_fig8.txt
if ! diff target/verify_sky_fig8.txt tests/golden/fig8_quick_skylake.txt >&2; then
    echo "verify: fig 8 --hw skylake-sp drifted from tests/golden/fig8_quick_skylake.txt" >&2
    exit 1
fi
sky_fig8=$(cat target/verify_sky_fig8.txt)
"${chaos_cmd[@]}" --hw skylake-sp --jobs 2 >target/verify_sky_chaos.txt
if ! diff target/verify_sky_chaos.txt tests/golden/fleet_chaos_skylake.txt >&2; then
    echo "verify: chaos fleet --hw skylake-sp drifted from tests/golden/fleet_chaos_skylake.txt" >&2
    exit 1
fi
# Zen 2 smoke: the same grid runs end to end on the other backend and
# actually produces different numbers.
zen_fig8=$(cargo run -q --release -p aw-cli -- fig 8 --quick --hw zen2 --jobs 2)
echo "$zen_fig8" | grep -q "Fig. 8" || {
    echo "verify: fig 8 --hw zen2 printed no report" >&2
    exit 1
}
if [ "$zen_fig8" = "$sky_fig8" ]; then
    echo "verify: zen2 output identical to skylake-sp (model not plumbed through)" >&2
    exit 1
fi
# Mixed fleet: byte-identical at --jobs 1/2/8.
mixed_cmd=("${chaos_cmd[@]}" --hw skylake-sp,zen2)
mixed_1=$("${mixed_cmd[@]}" --jobs 1)
mixed_2=$("${mixed_cmd[@]}" --jobs 2)
mixed_8=$("${mixed_cmd[@]}" --jobs 8)
if [ "$mixed_1" != "$mixed_2" ] || [ "$mixed_1" != "$mixed_8" ]; then
    echo "verify: mixed skylake-sp,zen2 fleet differs across --jobs 1/2/8" >&2
    exit 1
fi
echo "$mixed_1" | grep -q "hw:      skylake-sp, zen2" || {
    echo "verify: mixed fleet report missing its hw line" >&2
    exit 1
}
# Unknown names fail fast and list the registry.
if cargo run -q --release -p aw-cli -- fig 8 --hw epyc9 2>/tmp/aw_hw_err; then
    echo "verify: unknown --hw name was accepted" >&2
    exit 1
fi
grep -q "known models" /tmp/aw_hw_err || {
    echo "verify: unknown --hw error did not list known models" >&2
    exit 1
}

echo "verify: OK"
