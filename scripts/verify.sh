#!/usr/bin/env bash
# One-shot verification gate: release build, full test suite, and a
# warning-free clippy pass. CI and pre-commit both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
