#!/usr/bin/env bash
# Sweep-throughput benchmark: times `paper_report --quick` and the full
# Fig. 8 sweep at jobs=1 vs jobs=N (N = available parallelism, floor 4)
# and writes BENCH_sweep.json (wall-clock, speedup, points/sec) so the
# perf trajectory is tracked PR over PR.
#
# The executor guarantees byte-identical output at any worker count, so
# the two timings exercise the same work; the speedup column is pure
# scheduling. On a single-core host the expected speedup is ~1.0 — the
# JSON records host parallelism so the number stays interpretable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> building release artifacts"
cargo build -q --release -p agilewatts --example paper_report
cargo build -q --release -p aw-cli

python3 - "$@" <<'EOF'
import json, os, subprocess, time

cores = os.cpu_count() or 1
jobs_n = max(4, cores)

def timed(cmd, env_jobs, runs=3):
    """Median wall-clock of `cmd` with AW_JOBS=env_jobs."""
    env = dict(os.environ, AW_JOBS=str(env_jobs))
    samples = []
    for _ in range(runs):
        t0 = time.monotonic()
        subprocess.run(cmd, stdout=subprocess.DEVNULL, env=env, check=True)
        samples.append(time.monotonic() - t0)
    samples.sort()
    return samples[len(samples) // 2]

FIG8_POINTS = 7  # SweepParams::default() qps grid

benches = []
FLEET_SERVER_EPOCHS = 16 * 8  # fleet sweep grid upper bound (servers x epochs)

for name, cmd, points in [
    ("paper_report_quick", ["./target/release/examples/paper_report", "--quick"], None),
    ("fig8_sweep", ["./target/release/agilewatts", "fig", "8"], FIG8_POINTS),
    (
        "fleet_packing",
        ["./target/release/agilewatts", "fleet", "--servers", "16", "--epochs", "8",
         "--policy", "packing", "--autoscale", "--diurnal", "0.6"],
        FLEET_SERVER_EPOCHS,
    ),
]:
    t1 = timed(cmd, 1)
    tn = timed(cmd, jobs_n)
    entry = {
        "bench": name,
        "jobs_1_wall_s": round(t1, 4),
        f"jobs_{jobs_n}_wall_s": round(tn, 4),
        "speedup": round(t1 / tn, 3) if tn > 0 else None,
    }
    if points is not None:
        entry["points"] = points
        entry["points_per_sec_jobs_1"] = round(points / t1, 3)
        entry[f"points_per_sec_jobs_{jobs_n}"] = round(points / tn, 3)
    benches.append(entry)
    print(f"{name}: jobs=1 {t1:.3f}s, jobs={jobs_n} {tn:.3f}s, speedup {t1/tn:.2f}x")

# Streaming-observation overhead: the same fleet grid batch vs. through
# the watch cockpit (headless, one frame printed, so the delta is the
# snapshot building + channel hops, not terminal I/O). Budget: <2%.
fleet_grid = ["--servers", "16", "--epochs", "8", "--policy", "packing",
              "--autoscale", "--diurnal", "0.6"]
t_batch = timed(["./target/release/agilewatts", "fleet"] + fleet_grid, jobs_n)
t_watch = timed(
    ["./target/release/agilewatts", "watch", "--headless", "--frames", "1"] + fleet_grid,
    jobs_n,
)
overhead_pct = round((t_watch / t_batch - 1.0) * 100.0, 2) if t_batch > 0 else None
benches.append({
    "bench": "watch_overhead",
    "batch_wall_s": round(t_batch, 4),
    "watch_wall_s": round(t_watch, 4),
    "overhead_pct": overhead_pct,
    "budget_pct": 2.0,
})
print(f"watch_overhead: batch {t_batch:.3f}s, watch {t_watch:.3f}s, overhead {overhead_pct}%")

# Idle-observation overhead: the same sweep bare vs. with `--idle-out`
# (per-core interval capture + the aw-sleep analysis + CSV export).
# Observation is pure — the run artifacts stay byte-identical — so the
# delta is the analyzer itself. Budget: <25%. The sim hot path serves a
# request in well under a microsecond, so pricing every idle interval
# against the break-even model (~70 ns each; see aw-sleep's ignored
# analyze_microbench test) is inherently a double-digit share of sweep
# wall-clock; the budget tracks regressions against that floor.
sweep_grid = ["--workload", "memcached", "--qps", "300000", "--cores", "10",
              "--duration-ms", "200"]
t_plain = timed(["./target/release/agilewatts", "sweep"] + sweep_grid, jobs_n)
t_idle = timed(
    ["./target/release/agilewatts", "sweep", "--idle-out", "target/bench_idle.csv"] + sweep_grid,
    jobs_n,
)
overhead_pct = round((t_idle / t_plain - 1.0) * 100.0, 2) if t_plain > 0 else None
benches.append({
    "bench": "analyze_overhead",
    "plain_wall_s": round(t_plain, 4),
    "idle_out_wall_s": round(t_idle, 4),
    "overhead_pct": overhead_pct,
    "budget_pct": 25.0,
})
print(f"analyze_overhead: plain {t_plain:.3f}s, idle-out {t_idle:.3f}s, overhead {overhead_pct}%")

# Fleet-chaos overhead: the same fleet grid bare vs. with an *inert*
# fleet fault hook attached (seed pinned, every category at zero rate).
# The hook is pinned bit-invisible (tests/chaos.rs), so the delta is
# the health tracker, the per-epoch plan bookkeeping, and the always-on
# chaos counters. Budget: <5% — the plan draws are a handful of
# splitmix64 finalizers per server-epoch against a full discrete-event
# simulation, so anything above noise means a regression on the fleet
# hot path.
t_clean = timed(["./target/release/agilewatts", "fleet"] + fleet_grid, jobs_n)
t_chaos = timed(
    ["./target/release/agilewatts", "fleet", "--fleet-faults", "seed=1"] + fleet_grid,
    jobs_n,
)
overhead_pct = round((t_chaos / t_clean - 1.0) * 100.0, 2) if t_clean > 0 else None
benches.append({
    "bench": "fleet_chaos",
    "clean_wall_s": round(t_clean, 4),
    "inert_faults_wall_s": round(t_chaos, 4),
    "overhead_pct": overhead_pct,
    "budget_pct": 5.0,
})
print(f"fleet_chaos: clean {t_clean:.3f}s, inert hook {t_chaos:.3f}s, overhead {overhead_pct}%")

report = {
    "host_parallelism": cores,
    "jobs_n": jobs_n,
    "note": "speedup ~1.0 expected when host_parallelism == 1"
    if cores == 1
    else "speedup should approach min(jobs_n, points, host_parallelism)",
    "benches": benches,
}
with open("BENCH_sweep.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("wrote BENCH_sweep.json")

# ---------------------------------------------------------------------
# Single-run engine throughput (BENCH_singlerun.json): raw simulation
# events per second of wall-clock, not sweep points. Both commands print
# an "engine: <N> simulation events" line; dividing by the measured wall
# gives the metric the fast-path work (analytic idle-skip, calendar
# queue, allocation-free hot loop) is judged by. The event count is
# byte-deterministic — identical at any --jobs and with idle-skip on or
# off — so the denominator is the only thing that moves PR over PR.

def events_of(cmd, env_jobs):
    """Total `engine:` simulation events reported by `cmd`."""
    env = dict(os.environ, AW_JOBS=str(env_jobs))
    out = subprocess.run(cmd, capture_output=True, text=True, env=env, check=True).stdout
    for line in out.splitlines():
        if "simulation events" in line:
            return int(line.split()[1])
    raise SystemExit(f"no 'simulation events' line in output of {cmd}")

single = []

# The Fig. 8 default-grid anchor point: memcached on 10 cores at 300k
# QPS for 400 simulated ms, seed 42 — one server, one seed, pure engine.
fig8_point = ["./target/release/agilewatts", "sweep", "--workload", "memcached",
              "--qps", "300000", "--cores", "10", "--duration-ms", "400", "--seed", "42"]
ev = events_of(fig8_point, 1)
wall = timed(fig8_point, 1)
single.append({
    "bench": "fig8_single_run",
    "events": ev,
    "wall_s": round(wall, 4),
    "events_per_sec": round(ev / wall, 1),
})
print(f"fig8_single_run: {ev} events in {wall:.3f}s = {ev / wall / 1e6:.2f} Mev/s")

# Fleet scale: 1000 diurnal servers with the autoscaler, 24 epochs — the
# intra-run sharding path (every epoch's loaded servers fan out across
# the executor). One timing run per jobs setting; at ~15 s serial the
# median-of-3 protocol would triple the bench for little extra signal.
fleet_1k = ["./target/release/agilewatts", "fleet", "--servers", "1000", "--epochs", "24",
            "--epoch-ms", "5", "--policy", "packing", "--autoscale", "--diurnal", "0.8"]
ev = events_of(fleet_1k, 1)
wall_1 = timed(fleet_1k, 1, runs=1)
wall_n = timed(fleet_1k, jobs_n, runs=1)
single.append({
    "bench": "fleet_1k_diurnal",
    "events": ev,
    "jobs_1_wall_s": round(wall_1, 4),
    f"jobs_{jobs_n}_wall_s": round(wall_n, 4),
    "events_per_sec_jobs_1": round(ev / wall_1, 1),
    f"events_per_sec_jobs_{jobs_n}": round(ev / wall_n, 1),
})
print(f"fleet_1k_diurnal: {ev} events, jobs=1 {wall_1:.3f}s "
      f"({ev / wall_1 / 1e6:.2f} Mev/s), jobs={jobs_n} {wall_n:.3f}s "
      f"({ev / wall_n / 1e6:.2f} Mev/s)")

# Cross-vendor engine point: the same anchor run retargeted onto the
# Zen 2 model. Throughput is reported for the trajectory, and the cost
# of the HardwareModel indirection itself is measured where the
# simulation is identical — the explicit `--hw skylake-sp` spelling vs.
# the bare default. The model is resolved once per run (a registry
# lookup and a catalog clone at config build), so the dispatch budget
# is <2%: anything above that means per-event hw plumbing leaked into
# the hot loop.
zen_point = fig8_point + ["--hw", "zen2"]
ev_z = events_of(zen_point, 1)
wall_z = timed(zen_point, 1)
wall_sky_explicit = timed(fig8_point + ["--hw", "skylake-sp"], 1)
dispatch_pct = round((wall_sky_explicit / wall - 1.0) * 100.0, 2) if wall > 0 else None
single.append({
    "bench": "fig8_zen2",
    "events": ev_z,
    "wall_s": round(wall_z, 4),
    "events_per_sec": round(ev_z / wall_z, 1),
    "hw_dispatch_overhead_pct": dispatch_pct,
    "dispatch_budget_pct": 2.0,
})
print(f"fig8_zen2: {ev_z} events in {wall_z:.3f}s = {ev_z / wall_z / 1e6:.2f} Mev/s, "
      f"hw dispatch overhead {dispatch_pct}%")

with open("BENCH_singlerun.json", "w") as f:
    json.dump({"host_parallelism": cores, "jobs_n": jobs_n, "benches": single}, f, indent=2)
    f.write("\n")
print("wrote BENCH_singlerun.json")
EOF
