#!/usr/bin/env bash
# Sweep-throughput benchmark: times `paper_report --quick` and the full
# Fig. 8 sweep at jobs=1 vs jobs=N (N = available parallelism, floor 4)
# and writes BENCH_sweep.json (wall-clock, speedup, points/sec) so the
# perf trajectory is tracked PR over PR.
#
# The executor guarantees byte-identical output at any worker count, so
# the two timings exercise the same work; the speedup column is pure
# scheduling. On a single-core host the expected speedup is ~1.0 — the
# JSON records host parallelism so the number stays interpretable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> building release artifacts"
cargo build -q --release -p agilewatts --example paper_report
cargo build -q --release -p aw-cli

python3 - "$@" <<'EOF'
import json, os, subprocess, time

cores = os.cpu_count() or 1
jobs_n = max(4, cores)

def timed(cmd, env_jobs, runs=3):
    """Median wall-clock of `cmd` with AW_JOBS=env_jobs."""
    env = dict(os.environ, AW_JOBS=str(env_jobs))
    samples = []
    for _ in range(runs):
        t0 = time.monotonic()
        subprocess.run(cmd, stdout=subprocess.DEVNULL, env=env, check=True)
        samples.append(time.monotonic() - t0)
    samples.sort()
    return samples[len(samples) // 2]

FIG8_POINTS = 7  # SweepParams::default() qps grid

benches = []
FLEET_SERVER_EPOCHS = 16 * 8  # fleet sweep grid upper bound (servers x epochs)

for name, cmd, points in [
    ("paper_report_quick", ["./target/release/examples/paper_report", "--quick"], None),
    ("fig8_sweep", ["./target/release/agilewatts", "fig", "8"], FIG8_POINTS),
    (
        "fleet_packing",
        ["./target/release/agilewatts", "fleet", "--servers", "16", "--epochs", "8",
         "--policy", "packing", "--autoscale", "--diurnal", "0.6"],
        FLEET_SERVER_EPOCHS,
    ),
]:
    t1 = timed(cmd, 1)
    tn = timed(cmd, jobs_n)
    entry = {
        "bench": name,
        "jobs_1_wall_s": round(t1, 4),
        f"jobs_{jobs_n}_wall_s": round(tn, 4),
        "speedup": round(t1 / tn, 3) if tn > 0 else None,
    }
    if points is not None:
        entry["points"] = points
        entry["points_per_sec_jobs_1"] = round(points / t1, 3)
        entry[f"points_per_sec_jobs_{jobs_n}"] = round(points / tn, 3)
    benches.append(entry)
    print(f"{name}: jobs=1 {t1:.3f}s, jobs={jobs_n} {tn:.3f}s, speedup {t1/tn:.2f}x")

report = {
    "host_parallelism": cores,
    "jobs_n": jobs_n,
    "note": "speedup ~1.0 expected when host_parallelism == 1"
    if cores == 1
    else "speedup should approach min(jobs_n, points, host_parallelism)",
    "benches": benches,
}
with open("BENCH_sweep.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("wrote BENCH_sweep.json")
EOF
