//! Quickstart: simulate a Memcached-like service on a 10-core server,
//! first with the legacy Skylake C-state hierarchy, then with AgileWatts'
//! C6A/C6AE states, and compare power and latency.
//!
//! Run with: `cargo run --release --example quickstart`

use agilewatts::aw_cstates::{CState, NamedConfig};
use agilewatts::aw_server::{ServerConfig, SimBuilder};
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::memcached_etc;

fn main() {
    let qps = 300_000.0;
    let workload = memcached_etc(qps);
    println!(
        "Workload: {} at {:.0} QPS (mean service {})\n",
        workload.name(),
        qps,
        workload.mean_service()
    );

    let run = |named: NamedConfig| {
        let config = ServerConfig::new(10, named).with_duration(Nanos::from_millis(400.0));
        SimBuilder::new(config, memcached_etc(qps), 42).run().into_metrics()
    };

    let baseline = run(NamedConfig::Baseline);
    let aw = run(NamedConfig::Aw);

    println!("--- Baseline (C1/C1E/C6) ---");
    println!("{baseline}\n");
    println!("--- AgileWatts (C6A/C6AE/C6) ---");
    println!("{aw}\n");

    println!("AW power savings:    {:.1}%", aw.power_savings_vs(&baseline).as_percent());
    println!("AW tail-latency Δ:   {:+.2}%", aw.tail_latency_delta_vs(&baseline) * 100.0);
    println!("AW mean-latency Δ:   {:+.2}%", aw.mean_latency_delta_vs(&baseline) * 100.0);
    println!(
        "Agile-state residency: {}",
        (aw.residency_of(CState::C6A) + aw.residency_of(CState::C6AE))
    );
}
