//! Trace-driven simulation: replay a captured arrival trace and a
//! diurnal day/night swing through the simulator, comparing the legacy
//! hierarchy against AgileWatts — plus the energy-proportionality curve
//! behind the paper's Sec. 7.1 Google quote.
//!
//! Run with: `cargo run --release --example trace_replay`

use std::sync::Arc;

use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_server::{ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_sim::{LogNormal, SimRng};
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::{diurnal_memcached, TraceGaps};
use agilewatts::experiments::Proportionality;

fn main() {
    // 1) Replay an explicit arrival trace. Here the "capture" is
    //    synthesized: a bursty on/off pattern written out as absolute
    //    timestamps, exactly as a packet capture would provide them.
    let mut times = Vec::new();
    let mut t = 0.0;
    let mut rng = SimRng::seed(7);
    for burst in 0..400 {
        let burst_len = 20 + (burst % 30);
        for _ in 0..burst_len {
            t += rng.uniform_range(2_000.0, 10_000.0); // 2–10 µs apart
            times.push(t);
        }
        t += rng.uniform_range(0.5e6, 3.0e6); // 0.5–3 ms lull
    }
    let trace = TraceGaps::from_arrival_times(&times).expect("valid trace");
    println!(
        "Replaying a {}-gap trace ({} bursts, mean gap {:.1} µs):",
        trace.len(),
        400,
        agilewatts::aw_sim::Distribution::mean(&trace) / 1e3
    );

    let service = LogNormal::from_median(4_000.0, 0.4);
    let run = |named: NamedConfig| {
        let workload = WorkloadSpec::new(
            "trace-replay",
            Arc::new(TraceGaps::from_arrival_times(&times).expect("valid trace")),
            Arc::new(service),
            0.8,
        );
        let cfg = ServerConfig::new(4, named).with_duration(Nanos::from_millis(200.0));
        SimBuilder::new(cfg, workload, 42).run().into_metrics()
    };
    let base = run(NamedConfig::Baseline);
    let aw = run(NamedConfig::Aw);
    println!("  baseline: AvgP {}  p99 {}", base.avg_core_power, base.server_latency.p99);
    println!("  AW:       AvgP {}  p99 {}", aw.avg_core_power, aw.server_latency.p99);
    println!("  savings:  {:.1}%\n", aw.power_savings_vs(&base).as_percent());

    // 2) A diurnal swing at the same mean load.
    let run_diurnal = |named: NamedConfig| {
        let workload = diurnal_memcached(240_000.0, 0.85, 100e6);
        let cfg = ServerConfig::new(4, named).with_duration(Nanos::from_millis(200.0));
        SimBuilder::new(cfg, workload, 42).run().into_metrics()
    };
    let base = run_diurnal(NamedConfig::Baseline);
    let aw = run_diurnal(NamedConfig::Aw);
    println!("Diurnal swing (±85% around 240K QPS):");
    println!("  baseline: AvgP {}", base.avg_core_power);
    println!(
        "  AW:       AvgP {}  (savings {:.1}%)\n",
        aw.avg_core_power,
        aw.power_savings_vs(&base).as_percent()
    );

    // 3) The energy-proportionality curve.
    let report = Proportionality::default().run();
    println!("Energy proportionality (Memcached, power vs utilization):");
    println!("  {}", report.baseline);
    println!("  {}", report.aw);
    println!(
        "  proportionality score: baseline {:.2}, AW {:.2} (1.0 = ideal)",
        report.baseline_score, report.aw_score
    );
}
