//! The hardware micro-flows (Figs. 2, 5, 6; Secs. 5.2–5.3): steps the
//! cycle-level PMA model through C6A entry, snoop servicing, and exit,
//! prints the per-step latency trace, and shows the staggered-wake
//! in-rush ablation.
//!
//! Run with: `cargo run --release --example pma_microflows`

use agilewatts::aw_pma::{PmaFsm, Ufpg, WakePolicy};
use agilewatts::experiments::flow_latencies;

fn main() {
    let mut fsm = PmaFsm::new_c6a();
    fsm.write_context(0xC0FFEE);

    println!("C6A entry flow (Fig. 6 ①–③):");
    let entry = fsm.run_entry().expect("fresh FSM is active");
    for step in entry.steps() {
        println!(
            "  {:<22} start {:>7}  duration {:>7}",
            format!("{:?}", step.state),
            step.start,
            step.duration
        );
    }
    println!("  total: {}  (budget < 20 ns)\n", entry.total());

    println!("Snoop burst while idle (Fig. 6 ⓐ–ⓒ), 3 snoops:");
    let snoop = fsm.run_snoop(3).expect("idle core can serve snoops");
    for step in snoop.steps() {
        println!(
            "  {:<22} start {:>7}  duration {:>7}",
            format!("{:?}", step.state),
            step.start,
            step.duration
        );
    }
    println!("  total: {}\n", snoop.total());

    println!("C6A exit flow (Fig. 6 ④–⑥):");
    let exit = fsm.run_exit().expect("idle core can exit");
    for step in exit.steps() {
        println!(
            "  {:<22} start {:>7}  duration {:>7}",
            format!("{:?}", step.state),
            step.start,
            step.duration
        );
    }
    println!("  total: {}  (budget < 80 ns)", exit.total());
    println!(
        "  context after round trip: {:#x} (written {:#x})\n",
        fsm.read_context().expect("context must survive"),
        0xC0FFEEu64
    );

    println!("Staggered wake-up ablation (Sec. 5.3), UFPG = 4.5× AVX area:");
    let ufpg = Ufpg::skylake_c6a();
    for policy in [WakePolicy::Staggered, WakePolicy::Simultaneous, WakePolicy::Instantaneous] {
        let w = ufpg.wake(policy);
        println!(
            "  {policy:<14?} latency {:>8}  in-rush peak {:>6.1}× AVX reference{}",
            w.latency,
            w.peak_current(),
            if w.within_current_limit(1.05) {
                "  (within PDN limit)"
            } else {
                "  (VIOLATES PDN limit)"
            }
        );
    }
    println!();

    let f = flow_latencies();
    println!("Headline transition-latency summary:");
    println!("  C1 round trip:  {}", f.c1_round_trip);
    println!("  C6 entry/exit:  {} / {}", f.c6_entry, f.c6_exit);
    println!("  C6A entry/exit: {} / {} (measured)", f.c6a_entry_measured, f.c6a_exit_measured);
    println!("  C6A speedup over C6: {:.0}×", f.speedup_vs_c6);
}
