//! Produces a Perfetto-loadable trace of a Memcached run: every core's
//! C-state life cycle (active → entering → resident → waking) as one
//! track of slices, with governor decisions, wake interrupts, and queue
//! activity as instant events, plus the metrics-registry JSON alongside.
//!
//! Run with: `cargo run --release --example trace_cstates`
//! then load `target/trace_cstates.json` in <https://ui.perfetto.dev>
//! or `chrome://tracing`.

use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_server::{ServerConfig, SimBuilder};
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::memcached_etc;
use agilewatts::telemetry_table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick { Nanos::from_millis(20.0) } else { Nanos::from_millis(100.0) };
    let cores = 10;
    let qps = 200_000.0;

    println!("Tracing Memcached @ {qps:.0} QPS on {cores} cores ({duration} simulated)\n");

    for named in [NamedConfig::Baseline, NamedConfig::Aw] {
        let config = ServerConfig::new(cores, named).with_duration(duration);
        let out = SimBuilder::new(config, memcached_etc(qps), 42).with_telemetry(500_000).run();
        let (metrics, report) = (out.metrics, out.telemetry);
        let report = report.expect("telemetry enabled");

        println!("{metrics}\n");
        println!("{}", telemetry_table(&report.summary));

        let stem = named.to_string().to_lowercase().replace([',', '_'], "-");
        let trace_path = format!("target/trace_cstates_{stem}.json");
        let metrics_path = format!("target/metrics_cstates_{stem}.json");
        std::fs::write(&trace_path, report.chrome_trace_json()).expect("write trace JSON");
        std::fs::write(&metrics_path, report.metrics_json()).expect("write metrics JSON");
        println!("wrote {trace_path} ({} events) and {metrics_path}\n", report.events.len());
    }

    println!("Load the trace files in https://ui.perfetto.dev or chrome://tracing:");
    println!("the baseline camps in shallow C1/C1E slices while AW's tracks show");
    println!("deep C6A residencies with nanosecond-scale enter/exit slivers.");
}
