//! Packing vs spreading across a fleet, under the legacy Baseline menu
//! and under AgileWatts.
//!
//! The paper's datacenter argument has two layers. Within a server, AW's
//! agile states recover core power without the C6 wake tax. Across a
//! fleet, the *load balancer* decides which idle states are reachable at
//! all: packing concentrates requests so whole packages empty out and
//! their uncore sinks into PC6, while spreading dilutes load so every
//! core sees long idle gaps — cheapest per-request tails, but every
//! package stays awake. This example runs the same aggregate load
//! through both policies (plus the power-oblivious baselines) on both
//! menus, at a low-load and a high-load operating point.
//!
//! Run with: `cargo run --release --example fleet_routing [--quick]`

use agilewatts::experiments::Fleet;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base = if quick { Fleet::quick() } else { Fleet::default() };

    for utilization in [0.2, 0.7] {
        let fleet = Fleet { utilization, ..base.clone() };
        println!(
            "=== {} servers × {} cores @ {:.0}% aggregate load ===",
            fleet.servers,
            fleet.cores,
            utilization * 100.0
        );
        let comparison = fleet.run();
        println!("{}", comparison.table());
    }

    println!(
        "At low load, packing wins power: empty packages idle at PC6 (~2 W uncore)\n\
         instead of PC0 (12 W), and the autoscaler parks what packing empties.\n\
         At high load, spreading wins the tail: per-server utilization stays low,\n\
         so queueing — not C-state exits — stops dominating p99."
    );
}
