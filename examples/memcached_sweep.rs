//! The full Memcached evaluation: regenerates Figs. 8, 9, and 10 of the
//! paper — baseline residencies, AW power savings and latency impact
//! across request rates, the tuned-configuration comparison, and AW
//! against each tuned configuration.
//!
//! Run with: `cargo run --release --example memcached_sweep`
//! (pass `--quick` for a reduced sweep)

use agilewatts::experiments::{Fig10, Fig8, Fig9, SweepParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick { SweepParams::quick() } else { SweepParams::default() };
    println!(
        "Memcached sweep: {} QPS points on {} cores, {} per point\n",
        params.qps.len(),
        params.cores,
        params.duration
    );

    let fig8 = Fig8::new(params.clone()).run();
    println!("{fig8}");

    println!();
    let fig9 = Fig9::new(params.clone()).run();
    println!("{fig9}");

    println!();
    let fig10 = Fig10::new(params).run();
    println!("{fig10}");
}
