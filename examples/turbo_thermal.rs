//! The Turbo-interplay analysis (Sec. 7.3, Fig. 11): how the idle-state
//! choice feeds the thermal-capacitance bank that gates Turbo, and why
//! C6A uniquely combines low idle power (credit accrues) with nanosecond
//! transitions (no latency tax).
//!
//! Run with: `cargo run --release --example turbo_thermal`

use agilewatts::aw_server::ThermalModel;
use agilewatts::aw_types::{MilliWatts, Nanos};
use agilewatts::experiments::{Fig11, SweepParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // First, the mechanism in isolation: credit accrual per idle state.
    println!("Thermal credit banked after 50 ms of idle, by idle state:");
    for (name, power) in [
        ("C1   (1.44 W)", MilliWatts::from_watts(1.44)),
        ("C1E  (0.88 W)", MilliWatts::from_watts(0.88)),
        ("C6A  (0.30 W)", MilliWatts::new(302.5)),
        ("C6AE (0.235 W)", MilliWatts::new(235.0)),
        ("C6   (0.10 W)", MilliWatts::from_watts(0.1)),
    ] {
        let mut t = ThermalModel::skylake();
        t.advance(power, Nanos::from_millis(50.0));
        println!(
            "  {name:<15} {:.3} J {}",
            t.credit().as_joules(),
            if t.turbo_available() { "→ Turbo available" } else { "" }
        );
    }
    println!();

    // Then the full Fig. 11 sweep.
    let params = if quick { SweepParams::quick() } else { SweepParams::default() };
    let report = Fig11::new(params).run();
    println!("{report}");

    println!("Mean p99 across the sweep:");
    for config in [
        "T_No_C6",
        "NT_No_C6",
        "T_No_C6,No_C1E",
        "NT_No_C6,No_C1E",
        "T_C6A,No_C6,No_C1E",
        "NT_C6A,No_C6,No_C1E",
    ] {
        println!(
            "  {config:<22} {:>8.2} µs  (turbo busy {:.0}%)",
            report.mean_p99(config),
            report.mean_turbo(config) * 100.0
        );
    }
}
