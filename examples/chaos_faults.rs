//! Chaos smoke run: a fault-injected AW server sweep with overload
//! protection, printing the degradation ledger and the invariant verdict.
//!
//! ```console
//! $ cargo run --example chaos_faults
//! ```

use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_faults::{FaultPlan, FaultSpec};
use agilewatts::aw_server::{ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_types::Nanos;
use agilewatts::degradation_table;

fn main() {
    let spec = FaultSpec::parse(
        "seed=7,wake-fail=0.3,relock=0.1,drowsy=0.1,lost-wake=0.05,spurious=2000,storm=500,slowdown=25",
    )
    .expect("valid fault spec");
    println!("fault plan: {spec}");

    let config = ServerConfig::new(4, NamedConfig::Aw)
        .with_duration(Nanos::from_millis(60.0))
        .with_queue_cap(16)
        .with_request_timeout(Nanos::from_micros(400.0));
    let workload = WorkloadSpec::poisson("chaos", 120_000.0, Nanos::from_micros(3.0), 0.8);
    let output = SimBuilder::new(config, workload, 42).with_faults(FaultPlan::new(spec)).run();

    println!("{}", output.metrics);
    println!("{}", degradation_table(&output.metrics.degradation));
    match &output.failure {
        Some(failure) => println!("invariants: VIOLATED\n{failure}"),
        None => println!("invariants: OK"),
    }
}
