//! The additional-workload evaluation (Sec. 7.4): MySQL/sysbench OLTP
//! (Fig. 12) and Apache Kafka (Fig. 13).
//!
//! Run with: `cargo run --release --example mysql_kafka`
//! (pass `--quick` for a reduced run)

use agilewatts::experiments::{Fig12, Fig13};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    let fig12 = if quick { Fig12::quick() } else { Fig12::default() };
    println!("{}", fig12.run_all());

    println!();
    let fig13 = if quick { Fig13::quick() } else { Fig13::default() };
    println!("{}", fig13.run_all());

    println!();
    println!("Reading the tables:");
    println!(" * MySQL's baseline sits ≥40% in C6; disabling C6 (the vendor");
    println!("   recommendation) trims the tail by avoiding its ~30 µs exits;");
    println!("   C6A then recovers deep-idle power on top of that config.");
    println!(" * Kafka at low rate idles >60% in C6 thanks to batching gaps;");
    println!("   the same C6-disabled-vs-C6A story applies.");
}
