//! Regenerates every table and figure of the paper in one run and prints
//! them in order. This is the source of the numbers recorded in
//! EXPERIMENTS.md.
//!
//! Run with: `cargo run --release --example paper_report`
//! (pass `--quick` for the reduced parameter set)

use agilewatts::experiments::{
    enhanced_split, flow_latencies, governor_ablation, motivation, motivation_simulated,
    retention_ablation, sleep_mode_ablation, snoop_impact, table1, table2, table3, table4, table5,
    zone_count_ablation, Fig10, Fig11, Fig12, Fig13, Fig8, Fig9, PackageAnalysis, SweepParams,
    Table5Params, Validation,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sweep = if quick { SweepParams::quick() } else { SweepParams::default() };
    let t5 = if quick { Table5Params::quick() } else { Table5Params::default() };

    println!("{}", table1());
    println!("{}", table2());
    println!("{}", table3());
    println!("{}", table4());

    println!("=== Sec. 2 motivation (Eq. 1) ===");
    for r in motivation() {
        println!(
            "{:<40} C0/C1/C6 = {:>3.0}/{:>3.0}/{:>3.0}%  → savings bound {:>5.1}%",
            r.label, r.residencies_pct.0, r.residencies_pct.1, r.residencies_pct.2, r.savings_pct
        );
    }
    if !quick {
        for r in motivation_simulated(42) {
            println!(
                "{:<40} C0/C1/C6 = {:>3.0}/{:>3.0}/{:>3.0}%  → savings bound {:>5.1}%",
                r.label,
                r.residencies_pct.0,
                r.residencies_pct.1,
                r.residencies_pct.2,
                r.savings_pct
            );
        }
    }
    println!();

    let f = flow_latencies();
    println!("=== Fig. 3 / Fig. 6 / Sec. 5.2 flow latencies ===");
    println!("C1 round trip        {}", f.c1_round_trip);
    println!("C6 entry / exit      {} / {}", f.c6_entry, f.c6_exit);
    println!("C6A entry budget     {} (measured {})", f.c6a_entry_budget, f.c6a_entry_measured);
    println!("C6A exit budget      {} (measured {})", f.c6a_exit_budget, f.c6a_exit_measured);
    println!("C6A speedup vs C6    {:.0}×\n", f.speedup_vs_c6);

    println!("{}", Fig8::new(sweep.clone()).run());
    println!();
    println!("{}", Fig9::new(sweep.clone()).run());
    println!();
    println!("{}", Fig10::new(sweep.clone()).run());
    println!();
    println!("{}", Fig11::new(sweep.clone()).run());
    println!();

    let fig12 = if quick { Fig12::quick() } else { Fig12::default() };
    println!("{}", fig12.run_all());
    println!();
    let fig13 = if quick { Fig13::quick() } else { Fig13::default() };
    println!("{}", fig13.run_all());
    println!();

    let validation = if quick { Validation::quick() } else { Validation::default() };
    println!("{}", validation.run());
    println!();

    let s = snoop_impact();
    println!("=== Sec. 7.5 snoop impact ===");
    println!(
        "AW savings: {:.1}% quiet → {:.1}% under continuous snoops ({:.1} points lost)\n",
        s.savings_quiet_pct, s.savings_snooping_pct, s.lost_pct
    );

    println!("{}", table5(&t5));

    println!("=== Package-level analysis (footnote 1 / AgilePkgC motivation) ===");
    let pkg = if quick { PackageAnalysis::quick() } else { PackageAnalysis::default() };
    for r in pkg.run() {
        println!(
            "{:<16} {:<9} PC0/PC2/PC6 = {:>5.1}/{:>5.1}/{:>5.1}%  uncore {:>7.1} mW  core {:>7.1} mW",
            r.workload, r.config, r.package_pct[0], r.package_pct[1], r.package_pct[2],
            r.uncore_mw, r.core_mw
        );
    }
    println!();

    println!("=== Ablations ===");
    println!("Governors (Memcached @ 300K QPS):");
    for r in governor_ablation(&sweep, 300_000.0) {
        println!(
            "  {:<8} AvgP {:>7.1} mW  p99 {:>7.2} µs  deep {:>5.1}%",
            r.governor, r.avg_power_mw, r.p99_us, r.deep_residency_pct
        );
    }
    println!("UFPG zones:");
    for r in zone_count_ablation() {
        println!(
            "  {:>2} zones: staggered {:>5.1} ns, simultaneous peak {:>4.1}×",
            r.zones, r.staggered_latency_ns, r.simultaneous_peak
        );
    }
    let sm = sleep_mode_ablation();
    println!(
        "Cache sleep mode: C6A {} with vs {} without (+{})",
        sm.with_sleep_mode, sm.without_sleep_mode, sm.penalty
    );
    let ra = retention_ablation();
    println!(
        "Retention: exit {} in-place vs {} external; entry {} vs {}",
        ra.in_place_exit, ra.external_exit, ra.in_place_entry, ra.external_entry
    );
    let es = enhanced_split(&sweep, 300_000.0);
    println!(
        "C6AE split: {:.1}% savings with C6AE vs {:.1}% with C6A only",
        es.with_c6ae_pct, es.c6a_only_pct
    );
}
