//! Fleet-level chaos: crash a server mid-run and watch the fleet heal.
//!
//! The paper sells AgileWatts on latency-critical fleets that idle most
//! of the day — but a real fleet also *fails*: servers crash, restarts
//! stall, and whatever the router does next is what the users feel. This
//! example injects one scheduled crash into a packed, autoscaled fleet
//! and walks the whole recovery arc with receipts at every step:
//!
//! 1. the crash lands (p99 and SLO burn spike as survivors absorb the
//!    retried traffic),
//! 2. the router health-checks and ejects the casualty,
//! 3. the autoscaler unparks a replacement (paying real unpark latency
//!    and boot energy),
//! 4. the crashed server restarts, re-probes, and is readmitted,
//! 5. the tail settles back onto the fault-free baseline — the same
//!    seed without the fault plan, byte-comparable thanks to CRN.
//!
//! The run also demonstrates the two load-bearing robustness contracts:
//! the report is byte-identical at any `--jobs` fan-out, and the
//! `FleetFailureArtifact` it embeds replays to the exact same bytes.
//!
//! Run with: `cargo run --release --example fleet_chaos`

use agilewatts::aw_cluster::{AutoscalePolicy, FleetConfig, FleetReport, FleetSim, RoutingPolicy};
use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_exec::set_default_jobs;
use agilewatts::aw_faults::FleetFaultSpec;
use agilewatts::aw_server::{ServerConfig, WorkloadSpec};
use agilewatts::aw_types::Nanos;

const SERVERS: usize = 4;
const EPOCHS: usize = 20;
const CRASH_EPOCH: usize = 6;
const CRASH_SERVER: usize = 0;
const DOWN_EPOCHS: usize = 4;

fn config(faults: Option<FleetFaultSpec>) -> FleetConfig {
    // 50% aggregate load on a 4-server round-robin fleet keeps every
    // server in the rotation at ρ≈0.5 with no parked spare: when one
    // crashes, the survivors genuinely absorb its redistributed share
    // (ρ≈0.67, ρ≈0.86 with the retried burst) until the restart unparks
    // it — that queueing knee is the p99 spike this example demonstrates.
    // Packing would hide it: packed servers already run saturated.
    let workload = WorkloadSpec::poisson("chaos-etc", 1_000.0, Nanos::from_micros(250.0), 0.6);
    let capacity = 4.0 / workload.mean_service().as_secs();
    let mut config = FleetConfig::new(
        SERVERS,
        ServerConfig::new(4, NamedConfig::Aw),
        workload,
        0.5 * capacity * SERVERS as f64,
    )
    .with_epochs(EPOCHS, Nanos::from_millis(20.0))
    .with_policy(RoutingPolicy::RoundRobin)
    .with_autoscale(AutoscalePolicy::default())
    // 2.5 ms sits above every fault-free epoch's p99 and below the
    // post-crash spike: the burn rate is zero until the fault fires.
    .with_slo(Nanos::from_micros(2_500.0))
    .with_seed(42);
    if let Some(spec) = faults {
        config = config.with_fleet_faults(spec);
    }
    config
}

fn run(faults: Option<FleetFaultSpec>) -> FleetReport {
    FleetSim::new(config(faults)).run()
}

fn main() {
    let spec = FleetFaultSpec::parse(&format!(
        "crash-at={CRASH_EPOCH}:{CRASH_SERVER},down-epochs={DOWN_EPOCHS}"
    ))
    .expect("the scheduled-crash spec parses");

    let baseline = run(None);
    let chaos = run(Some(spec));

    println!(
        "fleet: {SERVERS} × 4-core AW servers, round-robin + autoscale, \
         {EPOCHS} × 20 ms epochs, seed 42"
    );
    println!(
        "fault: server {CRASH_SERVER} crashes at epoch {CRASH_EPOCH}, \
         dark for {DOWN_EPOCHS} epochs\n"
    );
    println!("epoch  active  crashed ejected  p99 chaos   p99 baseline  retried   shed");
    for (w, b) in chaos.windows.iter().zip(&baseline.windows) {
        let marker = if w.epoch == CRASH_EPOCH { "  <- crash" } else { "" };
        println!(
            "{:>5}  {:>6}  {:>7} {:>7}  {:>9.1}µs  {:>10.1}µs  {:>7}  {:>5}{marker}",
            w.epoch,
            w.active,
            w.crashed,
            w.ejected,
            w.latency.p99.as_micros(),
            b.latency.p99.as_micros(),
            w.retried,
            w.shed,
        );
    }
    println!("\n{chaos}");

    // --- The recovery arc, asserted -------------------------------------
    let d = &chaos.degradation;
    assert!(baseline.degradation.is_clean(), "fault-free baseline has chaos in its ledger");
    assert_eq!(d.crashes, 1, "exactly one crash was scheduled");
    assert!(d.ejections >= 1 && d.restarts >= 1 && d.readmissions >= 1, "recovery arc incomplete");
    assert!(d.retried_requests > 0, "lost crash traffic was never retried");

    // The tail spikes around the crash (survivors absorb the retried
    // load), then settles back onto the fault-free baseline.
    let spike_window = CRASH_EPOCH..(CRASH_EPOCH + DOWN_EPOCHS + 2).min(EPOCHS);
    let spike = spike_window
        .clone()
        .map(|e| {
            chaos.windows[e].latency.p99.as_micros() / baseline.windows[e].latency.p99.as_micros()
        })
        .fold(0.0f64, f64::max);
    let last = EPOCHS - 1;
    let settle = chaos.windows[last].latency.p99.as_micros()
        / baseline.windows[last].latency.p99.as_micros();
    let chaos_burn = chaos.slo_burn_rate();
    let base_burn = baseline.slo_burn_rate();
    println!(
        "p99 vs baseline: ×{spike:.2} at its worst during epochs {spike_window:?}, \
         ×{settle:.3} by the final epoch"
    );
    println!("SLO burn rate:   {chaos_burn:.3} under chaos vs {base_burn:.3} fault-free");
    assert!(spike > 1.10, "crash should spike p99 ≥10% over baseline, got ×{spike:.3}");
    assert!(
        (settle - 1.0).abs() <= 0.10,
        "final-epoch p99 should settle within 10% of the fault-free baseline, got ×{settle:.3}"
    );
    assert_eq!(
        chaos.windows[last].active, baseline.windows[last].active,
        "fleet never returned to its fault-free census"
    );
    assert!(chaos_burn > base_burn, "the crash must burn SLO budget the baseline does not");

    // --- Byte-identical at any fan-out ----------------------------------
    let serial = format!("{chaos:?}");
    for jobs in [1usize, 2, 8] {
        set_default_jobs(jobs);
        let again = format!(
            "{:?}",
            run(Some(
                FleetFaultSpec::parse(&format!(
                    "crash-at={CRASH_EPOCH}:{CRASH_SERVER},down-epochs={DOWN_EPOCHS}"
                ))
                .unwrap(),
            ))
        );
        assert_eq!(again, serial, "fleet report drifted at --jobs {jobs}");
    }
    set_default_jobs(0);
    println!("determinism:     byte-identical at --jobs 1/2/8");

    // --- The artifact replays -------------------------------------------
    let artifact = chaos.failure.as_ref().expect("active chaos produces an artifact");
    let respec = FleetFaultSpec::parse(&artifact.fleet_spec).expect("artifact spec re-parses");
    let replay =
        FleetSim::new(config(None).with_seed(artifact.seed).with_fleet_faults(respec)).run();
    assert_eq!(format!("{replay:?}"), serial, "artifact replay diverged");
    println!(
        "replay: OK ({} recorded fault events; {})",
        artifact.events.len(),
        artifact.replay_hint()
    );
}
