//! The datacenter cost analysis (Sec. 7.6, Table 5): simulate Memcached
//! at each load level, price the per-core power delta over a year across
//! a 100 K-server fleet, and show the PUE sensitivity.
//!
//! Run with: `cargo run --release --example datacenter_cost`

use agilewatts::aw_power::TcoModel;
use agilewatts::aw_types::MilliWatts;
use agilewatts::experiments::{table5, Table5Params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick { Table5Params::quick() } else { Table5Params::default() };

    println!("{}", table5(&params));

    println!("PUE sensitivity (a steady 250 mW/core saving):");
    let delta = MilliWatts::new(250.0);
    for pue in [1.0, 1.2, 1.5, 2.0] {
        let tco = TcoModel::paper_instance().with_pue(pue);
        println!(
            "  PUE {pue:.1}: ${:.2}M per year per 100K servers",
            tco.yearly_fleet_savings(delta) / 1e6
        );
    }

    println!();
    println!("Model: savings = ΔAvgP × seconds/year × $0.125/kWh × 20 cores × 100K servers × PUE.");
    println!("AW does not cut TDP, so cooling capex is unchanged — these are energy-opex savings.");
}
