//! Attributes request latency phase by phase on the same lightly-loaded
//! Memcached stream under the legacy baseline and under AgileWatts with
//! C6A, sharing one seed (common random numbers) so the two runs are
//! directly comparable. At light load the baseline governor parks cores
//! in C6, so its tail is dominated by the ~41 µs C6 exit; C6A reaches
//! near-C6 power with a C1-class exit, so that component collapses while
//! the workload-determined service phase barely moves.
//!
//! Run with: `cargo run --release --example latency_attribution`
//! then feed `target/attribution_*.folded` to `flamegraph.pl` or
//! <https://speedscope.app>, and plot `target/timeline_*.csv`.

use agilewatts::attribution_table;
use agilewatts::aw_cstates::{CState, CStateConfig, NamedConfig};
use agilewatts::aw_server::{ServerConfig, SimBuilder};
use agilewatts::aw_telemetry::SloMonitor;
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::memcached_etc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick { Nanos::from_millis(60.0) } else { Nanos::from_millis(300.0) };
    let window = Nanos::from_millis(if quick { 2.0 } else { 10.0 });
    let cores = 4;
    let qps = 5_000.0;
    let slo = Nanos::from_micros(30.0);

    println!(
        "Attributing Memcached @ {qps:.0} QPS on {cores} cores ({duration} simulated, \
         {window} windows, shared seed)\n"
    );

    // Turbo-off pair so the service phase is workload-determined in both
    // runs; the AW side is the Sec. 7.2 C6A-only configuration.
    let runs = [
        ("baseline", ServerConfig::new(cores, NamedConfig::NtBaseline)),
        (
            "aw-c6a",
            ServerConfig::new(cores, NamedConfig::NtAw)
                .with_cstates(CStateConfig::new([CState::C6A], false)),
        ),
    ];

    let mut exit_means = Vec::new();
    let mut service_means = Vec::new();
    for (stem, config) in runs {
        let output = SimBuilder::new(config.with_duration(duration), memcached_etc(qps), 42)
            .with_attribution(window)
            .run();
        let report = output.attribution.expect("attribution enabled");

        println!("--- {stem} ---");
        println!("{}", output.metrics);
        println!("{}", attribution_table(&report.summary));
        println!("{}\n", SloMonitor::new(slo).evaluate(&report.timeline));

        let folded_path = format!("target/attribution_{stem}.folded");
        let timeline_path = format!("target/timeline_{stem}.csv");
        std::fs::write(&folded_path, report.summary.folded_stack()).expect("write folded stacks");
        std::fs::write(&timeline_path, report.timeline.to_csv()).expect("write timeline CSV");
        println!("wrote {folded_path} and {timeline_path}\n");

        exit_means.push(report.summary.mean.exit_penalty);
        service_means.push(report.summary.mean.service);
    }

    let exit_drop = 100.0 * (1.0 - exit_means[1].as_nanos() / exit_means[0].as_nanos());
    let service_shift = 100.0 * (service_means[1].as_nanos() / service_means[0].as_nanos() - 1.0);
    println!(
        "AW cuts the mean C-state exit penalty {:.1}% (baseline {} -> AW {}) while the",
        exit_drop, exit_means[0], exit_means[1]
    );
    println!(
        "service phase moves only {service_shift:+.2}% — the tail improvement is entirely \
         the exit-latency story."
    );
}
