//! Makes the Sec. 2 motivation measurable: on the same Memcached stream
//! (common random numbers), how much of the *oracle-achievable* idle
//! energy saving does each configuration actually bank? The legacy
//! baseline's menu governor dares not spend short idle periods in C6 —
//! its 133 µs round-trip budget makes most of them un-sleepable — so the
//! deep opportunity goes to waste in C1/C1E. AgileWatts' C6A/C6AE reach
//! near-C6 power behind a C1-class exit, turning those same periods into
//! deep residency: AW recovers a strictly larger share of the deep-sleep
//! opportunity.
//!
//! Run with: `cargo run --release --example idle_opportunity`
//! then plot `target/idle_*.csv` (per-window recovery) or inspect
//! `target/idle_*.json` (full ledger, audit, and distributions).

use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_server::{ServerConfig, SimBuilder};
use agilewatts::aw_sleep::{BreakEven, IdleReport};
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::memcached_etc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = Nanos::from_millis(if quick { 60.0 } else { 300.0 });
    let window = Nanos::from_millis(if quick { 2.0 } else { 10.0 });
    let cores = 10;
    let qps = 300_000.0;

    println!(
        "Idle opportunity on Memcached @ {qps:.0} QPS, {cores} cores \
         ({duration} simulated, shared seed)\n"
    );

    // The comparison yardstick: the full AW menu's break-even model.
    // Under the baseline's own legacy model most short idles are simply
    // un-sleepable (C6's 133 µs round trip never fits), which would make
    // its recovery trivially perfect; scoring both runs against the same
    // achievable menu asks the honest question — of the deep residency
    // *AW hardware* could bank here, how much does each menu get?
    let yardstick = BreakEven::from_server(&ServerConfig::new(cores, NamedConfig::Aw));

    let mut recoveries = Vec::new();
    for (stem, named) in [("baseline", NamedConfig::Baseline), ("aw", NamedConfig::Aw)] {
        let config = ServerConfig::new(cores, named).with_duration(duration);
        let output =
            SimBuilder::new(config.clone(), memcached_etc(qps), 42).with_idle_analysis().run();
        let intervals = output.idle_intervals.as_deref().expect("idle analysis enabled");
        let report =
            IdleReport::analyze(intervals, &BreakEven::from_server(&config), cores, window);

        println!("--- {named} ---");
        println!("{}", output.metrics);
        println!("{report}\n");

        let csv_path = format!("target/idle_{stem}.csv");
        let json_path = format!("target/idle_{stem}.json");
        std::fs::write(&csv_path, report.to_csv()).expect("write idle CSV");
        std::fs::write(&json_path, report.to_json()).expect("write idle JSON");
        println!("wrote {csv_path} and {json_path}\n");

        let vs_aw_menu = IdleReport::analyze(intervals, &yardstick, cores, window);
        recoveries.push(vs_aw_menu.ledger.deep_recovery());
    }

    let (base, aw) = (recoveries[0], recoveries[1]);
    assert!(
        aw > base,
        "AW must recover a strictly larger share of the deep-sleep opportunity \
         (baseline {base:.4}, AW {aw:.4})"
    );
    println!(
        "deep-sleep opportunity recovered: baseline {:.1}% vs AW {:.1}% ({:+.1} points)",
        100.0 * base,
        100.0 * aw,
        100.0 * (aw - base)
    );
    println!(
        "Same workload, same arrivals — only the exit latency changed. The gap is the \
         deep idle energy the legacy menu governor leaves on the table."
    );
}
