//! Integration tests for latency attribution: the sum-to-latency
//! invariant on real simulated spans, the AW-vs-baseline C6 exit-penalty
//! collapse under common random numbers, independent parsing of the
//! timeline exports, folded-stack format validity, and SLO burn-rate
//! evaluation.

use agilewatts::aw_cstates::{CState, CStateConfig, NamedConfig};
use agilewatts::aw_server::{RunOutput, ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_telemetry::SloMonitor;
use agilewatts::aw_types::Nanos;

/// See `tests/common/json_reader.rs` — the reader is shared with the
/// telemetry integration tests.
#[path = "common/json_reader.rs"]
mod json;

const WINDOW: f64 = 2.0; // ms

fn workload(qps: f64) -> WorkloadSpec {
    WorkloadSpec::poisson("attr", qps, Nanos::from_micros(4.0), 0.8)
}

fn attributed_run(named: NamedConfig, qps: f64, seed: u64) -> RunOutput {
    let config = ServerConfig::new(4, named).with_duration(Nanos::from_millis(80.0));
    SimBuilder::new(config, workload(qps), seed).with_attribution(Nanos::from_millis(WINDOW)).run()
}

#[test]
fn phases_sum_to_measured_latency_on_every_span() {
    let output = attributed_run(NamedConfig::Aw, 150_000.0, 11);
    let report = output.attribution.expect("attribution enabled");
    assert_eq!(report.spans.len() as u64, output.metrics.completed);
    assert!(report.spans.len() > 1_000, "expected a busy run");
    for span in &report.spans {
        let sum = span.queue_wait + span.exit_penalty + span.snoop_stall + span.service;
        let measured = span.server_latency();
        assert!(
            (sum.as_nanos() - measured.as_nanos()).abs() < 1e-6,
            "phases {} != measured {} for span completing at {}",
            sum,
            measured,
            span.completion
        );
    }
    // The summary's residual agrees: ~0 when the invariant holds.
    assert!(report.summary.mean_residual.as_nanos().abs() < 1e-6);
}

/// The paper's headline mechanism, observed through attribution: under
/// common random numbers (same seed drives identical arrival and service
/// streams), swapping the C1E/C6-heavy baseline for C6A-only AgileWatts
/// collapses the C6-class exit penalty while leaving the
/// workload-determined service time untouched.
#[test]
fn aw_collapses_c6_exit_penalty_under_common_random_numbers() {
    // Light load: long idle gaps steer the baseline governor into C6,
    // so its wakes pay the full deep-state exit latency.
    let qps = 5_000.0;
    let seed = 33;
    let base = attributed_run(NamedConfig::NtBaseline, qps, seed)
        .attribution
        .expect("attribution enabled")
        .summary;
    let cfg = ServerConfig::new(4, NamedConfig::NtAw)
        .with_cstates(CStateConfig::new([CState::C6A], false))
        .with_duration(Nanos::from_millis(80.0));
    let aw = SimBuilder::new(cfg, workload(qps), seed)
        .with_attribution(Nanos::from_millis(WINDOW))
        .run()
        .attribution
        .expect("attribution enabled")
        .summary;

    // The baseline pays for C6 wakes; attribution names the state.
    let c6_base =
        base.exit_by_state.iter().find(|s| s.state == "C6").expect("baseline charges C6 exits");
    assert!(c6_base.count > 0);
    let c6_base_per_request = c6_base.total.as_nanos() / base.requests as f64;
    let c6_aw_per_request = aw
        .exit_by_state
        .iter()
        .find(|s| s.state == "C6")
        .map_or(0.0, |s| s.total.as_nanos() / aw.requests as f64);
    assert!(
        c6_aw_per_request <= 0.1 * c6_base_per_request,
        "C6 exit penalty should shrink >=90%: base {c6_base_per_request} ns/req, \
         aw {c6_aw_per_request} ns/req"
    );
    // The overall exit-penalty phase collapses with it (C6A exits are
    // C1-class), and what remains is charged to C6A, not C6.
    assert!(
        aw.mean.exit_penalty.as_nanos() <= 0.5 * base.mean.exit_penalty.as_nanos(),
        "aw {} vs base {}",
        aw.mean.exit_penalty,
        base.mean.exit_penalty
    );
    assert!(aw.exit_by_state.iter().any(|s| s.state == "C6A"));

    // Service time is workload-determined; common random numbers keep it
    // within 1% across the two configurations.
    let svc_ratio = aw.mean.service.as_nanos() / base.mean.service.as_nanos();
    assert!((svc_ratio - 1.0).abs() < 0.01, "service time should be invariant: ratio {svc_ratio}");
}

#[test]
fn timeline_json_and_csv_parse_independently_and_agree() {
    let output = attributed_run(NamedConfig::Aw, 150_000.0, 7);
    let report = output.attribution.expect("attribution enabled");

    // JSON, through the independent recursive-descent reader.
    let doc = json::parse(&report.timeline.to_json()).expect("timeline JSON parses");
    assert!(doc.get("window_ns").and_then(json::Value::as_f64).unwrap() > 0.0);
    let windows = doc.get("windows").and_then(json::Value::as_array).expect("windows array");
    assert!(windows.len() > 5, "expected many non-empty windows, got {}", windows.len());
    let mut json_completed = 0.0;
    for w in windows {
        for key in [
            "start_ms",
            "completed",
            "throughput_qps",
            "queue_ns",
            "cstate_exit_ns",
            "service_ns",
            "avg_power_mw",
        ] {
            assert!(w.get(key).and_then(json::Value::as_f64).is_some(), "window missing {key}");
        }
        assert!(w.get("residency").is_some(), "window missing residency");
        json_completed += w.get("completed").and_then(json::Value::as_f64).unwrap();
    }
    // Every measured completion lands in exactly one window.
    assert_eq!(json_completed as u64, output.metrics.completed);

    // CSV: a header plus one equal-width numeric row per JSON window.
    let csv = report.timeline.to_csv();
    let mut lines = csv.lines();
    let header = lines.next().expect("csv header");
    assert!(header.starts_with("start_ms,completed,throughput_qps,queue_ns"), "{header}");
    let width = header.split(',').count();
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), windows.len(), "CSV rows mirror JSON windows");
    let mut csv_completed = 0.0;
    for row in rows {
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells.len(), width, "{row}");
        for cell in &cells {
            assert!(cell.parse::<f64>().is_ok(), "non-numeric cell in {row}");
        }
        csv_completed += cells[1].parse::<f64>().unwrap();
    }
    assert_eq!(csv_completed as u64, output.metrics.completed);
}

#[test]
fn folded_stack_lines_are_well_formed() {
    let output = attributed_run(NamedConfig::Baseline, 100_000.0, 21);
    let summary = output.attribution.expect("attribution enabled").summary;
    let folded = summary.folded_stack();
    assert!(!folded.is_empty());
    let mut roots = std::collections::BTreeSet::new();
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`frames count` shape");
        let frames: Vec<&str> = stack.split(';').collect();
        assert!(frames.len() >= 2, "stack too shallow: {line}");
        assert!(frames.iter().all(|f| !f.is_empty()), "empty frame in {line}");
        assert!(count.parse::<u64>().unwrap() > 0, "zero leaves must be omitted: {line}");
        roots.insert(frames[0].to_string());
    }
    // Both buckets render on a run with traffic.
    assert!(roots.contains("all") && roots.contains("tail"), "{roots:?}");
    // The service phase always contributes.
    assert!(folded.contains("all;service "), "{folded}");
}

#[test]
fn slo_monitor_burn_rate_tracks_the_target() {
    let report =
        attributed_run(NamedConfig::Aw, 150_000.0, 7).attribution.expect("attribution enabled");

    // An absurdly tight target is violated in every window...
    let tight = SloMonitor::new(Nanos::new(1.0)).evaluate(&report.timeline);
    assert!(!tight.is_met());
    assert!((tight.burn_rate() - 1.0).abs() < 1e-9, "{}", tight.burn_rate());
    assert!(tight.first_violation.is_some());
    assert!(tight.windows_total > 5);

    // ...an absurdly loose one never is.
    let loose = SloMonitor::new(Nanos::from_secs(1.0)).evaluate(&report.timeline);
    assert!(loose.is_met());
    assert_eq!(loose.windows_violated, 0);
    assert_eq!(loose.burn_rate(), 0.0);
    assert_eq!(loose.first_violation, None);

    // Both verdicts render their summary line.
    assert!(tight.to_string().contains("VIOLATED"), "{tight}");
    assert!(loose.to_string().contains("MET"), "{loose}");
}
