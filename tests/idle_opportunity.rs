//! The idle-opportunity observability contract (DESIGN §13):
//!
//! * **Observation purity** — attaching `with_idle_analysis()` must not
//!   perturb a single bit of any run artifact: the attribution timeline
//!   CSV, the chaos golden metrics, and the fleet timeline are all
//!   byte-identical with and without the observer, at any worker count.
//! * **Ledger dominance** — the oracle-achievable savings bound the
//!   achieved savings from above on every run (the oracle always has
//!   the governor's own choice in its candidate set).
//! * **Prediction provenance** — the audit's prediction-error statistics
//!   are exactly a hand-folded EWMA over the observed idle stream.

use agilewatts::aw_cluster::{AutoscalePolicy, FleetConfig, FleetSim, LoadShape, RoutingPolicy};
use agilewatts::aw_cstates::{CState, IdleGovernor, MenuGovernor, NamedConfig};
use agilewatts::aw_exec::{set_default_jobs, SweepExecutor};
use agilewatts::aw_faults::{FaultPlan, FaultSpec};
use agilewatts::aw_server::{IdleInterval, ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_sleep::{BreakEven, IdleReport};
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::memcached_etc;
use proptest::prelude::*;

fn server_config(named: NamedConfig) -> ServerConfig {
    ServerConfig::new(4, named).with_duration(Nanos::from_millis(60.0))
}

/// The attribution timeline CSV plus the full-precision metrics debug
/// form for one memcached run, with or without the idle observer.
fn server_artifacts(observed: bool) -> (String, String) {
    let mut sim = SimBuilder::new(server_config(NamedConfig::Aw), memcached_etc(150_000.0), 7)
        .with_attribution(Nanos::from_millis(5.0));
    if observed {
        sim = sim.with_idle_analysis();
    }
    let out = sim.run();
    let csv = out.attribution.as_ref().expect("attribution on").timeline.to_csv();
    (csv, format!("{:?}", out.metrics))
}

/// Chaos-style golden bits (completions + exact power/p99 bit patterns)
/// for a faulted run, with or without the idle observer.
fn chaos_bits(observed: bool) -> String {
    let spec = FaultSpec::parse("seed=11,wake-fail=0.25,relock=0.1,lost-wake=0.05,spurious=2000")
        .expect("fixed plan parses");
    let workload = WorkloadSpec::poisson("golden", 60_000.0, Nanos::from_micros(3.0), 0.8);
    let mut sim = SimBuilder::new(server_config(NamedConfig::Aw), workload, 7)
        .with_faults(FaultPlan::new(spec));
    if observed {
        sim = sim.with_idle_analysis();
    }
    let m = sim.run().into_metrics();
    format!(
        "{} {:#018x} {:#018x}",
        m.completed,
        m.avg_core_power.as_milliwatts().to_bits(),
        m.server_latency.p99.as_nanos().to_bits()
    )
}

/// A fully featured fleet (diurnal load, autoscaler, packing) rendered
/// to its timeline CSV plus debug form. Fleet epoch sims always run the
/// idle observer, so identical fingerprints across worker counts pin
/// both determinism and observation purity on the fleet path.
fn fleet_fingerprint() -> String {
    let cores = 4;
    let workload = WorkloadSpec::poisson("fleet-idle", 1_000.0, Nanos::from_micros(250.0), 0.6);
    let capacity = cores as f64 / workload.mean_service().as_secs();
    let config = FleetConfig::new(
        4,
        ServerConfig::new(cores, NamedConfig::NtAw),
        workload,
        0.3 * capacity * 4.0,
    )
    .with_epochs(3, Nanos::from_millis(15.0))
    .with_policy(RoutingPolicy::Packing)
    .with_load(LoadShape::Diurnal { amplitude: 0.5 })
    .with_autoscale(AutoscalePolicy::default());
    let report = FleetSim::new(config).run();
    format!("{}\n{report:?}", report.timeline_csv())
}

/// One test function on purpose: [`set_default_jobs`] is process-global,
/// and Rust runs `#[test]` functions of one binary concurrently — the
/// jobs ladder must not race with itself.
#[test]
fn idle_analysis_is_invisible_in_every_artifact() {
    let mut fleets: Vec<(usize, String)> = Vec::new();
    for jobs in [1usize, 8] {
        set_default_jobs(jobs);
        assert_eq!(SweepExecutor::current().jobs(), jobs, "override not picked up");
        let (plain_csv, plain_metrics) = server_artifacts(false);
        let (seen_csv, seen_metrics) = server_artifacts(true);
        assert_eq!(plain_csv, seen_csv, "timeline CSV drifted under observation at jobs={jobs}");
        assert_eq!(plain_metrics, seen_metrics, "metrics drifted under observation at jobs={jobs}");
        assert_eq!(chaos_bits(false), chaos_bits(true), "chaos bits drifted at jobs={jobs}");
        fleets.push((jobs, fleet_fingerprint()));
    }
    set_default_jobs(0); // release the override for anything that follows

    let (_, serial) = &fleets[0];
    assert!(serial.contains(",recovery,"), "fleet timeline lost its recovery column");
    for (jobs, fp) in &fleets[1..] {
        assert_eq!(fp, serial, "fleet timeline drifted at jobs={jobs}");
    }
}

#[test]
fn oracle_dominates_achieved_on_every_run() {
    for (named, seed) in [
        (NamedConfig::Baseline, 3),
        (NamedConfig::Aw, 3),
        (NamedConfig::Aw, 99),
        (NamedConfig::NtAw, 17),
    ] {
        let config = server_config(named);
        let out = SimBuilder::new(config.clone(), memcached_etc(120_000.0), seed)
            .with_idle_analysis()
            .run();
        let intervals = out.idle_intervals.as_deref().expect("idle analysis on");
        assert!(!intervals.is_empty(), "{named} seed={seed}: no idle intervals captured");
        let report = IdleReport::analyze(
            intervals,
            &BreakEven::from_server(&config),
            4,
            Nanos::from_millis(5.0),
        );
        let l = &report.ledger;
        assert!(
            l.oracle_savings() >= l.achieved_savings(),
            "{named} seed={seed}: oracle below achieved"
        );
        assert!(
            l.achievable_residency >= l.achieved_residency,
            "{named} seed={seed}: achievable residency below achieved"
        );
        assert!((0.0..=1.0).contains(&l.recovery()), "{named} seed={seed}");
        assert!((0.0..=1.0).contains(&l.deep_recovery()), "{named} seed={seed}");
        assert_eq!(report.audit.decisions, l.intervals, "{named} seed={seed}");
    }
}

/// The example's headline claim, pinned at test scale: same arrivals,
/// same seed — AW banks a strictly larger share of the deep (C6-class)
/// opportunity than the legacy baseline menu. Both runs are scored
/// against the *same* yardstick (the full AW menu's break-even model):
/// under the baseline's own legacy model short idles are simply
/// un-sleepable, which would make its recovery trivially perfect.
#[test]
fn aw_recovers_more_of_the_deep_opportunity_than_baseline() {
    let yardstick = BreakEven::from_server(&ServerConfig::new(8, NamedConfig::Aw));
    let recovery = |named| {
        let config = ServerConfig::new(8, named).with_duration(Nanos::from_millis(80.0));
        let out = SimBuilder::new(config, memcached_etc(200_000.0), 42).with_idle_analysis().run();
        let report = IdleReport::analyze(
            out.idle_intervals.as_deref().expect("idle analysis on"),
            &yardstick,
            8,
            Nanos::from_millis(10.0),
        );
        report.ledger.deep_recovery()
    };
    let base = recovery(NamedConfig::Baseline);
    let aw = recovery(NamedConfig::Aw);
    assert!(aw > base, "AW deep recovery {aw:.4} must beat baseline {base:.4}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `MenuGovernor::last_prediction` is exactly the hand-folded EWMA
    /// (× pessimism) over the observed idle stream, and the audit's
    /// error statistics are exactly the fold of those predictions
    /// against the actual durations.
    #[test]
    fn menu_prediction_stats_match_a_hand_folded_ewma(
        durations in prop::collection::vec(100.0f64..5_000_000.0, 2..120),
        alpha in 0.05f64..1.0,
        pessimism in 0.05f64..1.0,
    ) {
        let mut gov = MenuGovernor::with_params(alpha, pessimism);
        let mut ewma: Option<f64> = None;
        let mut intervals = Vec::new();
        let mut start = 0.0;
        for &d in &durations {
            // The prediction available *before* this interval is what the
            // capture layer stamps on it.
            let hand = ewma.map(|e| e * pessimism);
            let predicted = gov.last_prediction();
            match (hand, predicted) {
                (None, None) => {}
                (Some(h), Some(p)) => prop_assert!(
                    (p.as_nanos() - h).abs() <= 1e-9 * h.max(1.0),
                    "prediction diverged: hand {h} vs governor {p}"
                ),
                other => prop_assert!(false, "prediction presence diverged: {other:?}"),
            }
            intervals.push(IdleInterval {
                core: 0,
                start: Nanos::new(start),
                duration: Nanos::new(d),
                chosen: CState::C1,
                predicted,
                measured: true,
            });
            start += d + 1_000.0;
            gov.observe_idle(Nanos::new(d));
            ewma = Some(match ewma {
                None => d,
                Some(prev) => prev * (1.0 - alpha) + d * alpha,
            });
        }

        // Hand-fold the statistics the audit must report: only intervals
        // carrying a prediction count (the first never does).
        let mut n = 0u64;
        let mut under = 0u64;
        let mut err_sum = 0.0;
        let mut abs_sum = 0.0;
        for iv in &intervals {
            if let Some(p) = iv.predicted {
                n += 1;
                let err = (p - iv.duration).as_nanos();
                err_sum += err;
                abs_sum += err.abs();
                if err < 0.0 {
                    under += 1;
                }
            }
        }
        prop_assert!(n > 0, "every case has at least one predicted interval");

        let config = ServerConfig::new(1, NamedConfig::Baseline);
        let report = IdleReport::analyze(
            &intervals,
            &BreakEven::from_server(&config),
            1,
            Nanos::from_millis(10.0),
        );
        let p = &report.audit.prediction;
        prop_assert_eq!(p.predicted, n);
        prop_assert_eq!(p.underpredictions, under);
        let tol = 1e-9 * (abs_sum / n as f64).max(1.0);
        prop_assert!((p.mean_error.as_nanos() - err_sum / n as f64).abs() <= tol);
        prop_assert!((p.mean_abs_error.as_nanos() - abs_sum / n as f64).abs() <= tol);
    }
}
