//! Chaos harness: deterministic fault injection, graceful degradation,
//! and overload protection hold up under arbitrary fault plans — and the
//! fault layer is bit-invisible when no faults fire.

use agilewatts::aw_cluster::{AutoscalePolicy, FleetConfig, FleetSim, LoadShape, RoutingPolicy};
use agilewatts::aw_cstates::{CState, NamedConfig};
use agilewatts::aw_exec::{set_default_jobs, SweepExecutor};
use agilewatts::aw_faults::{FaultPlan, FaultSpec, FleetFaultSpec};
use agilewatts::aw_server::{RunMetrics, ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_sim::SimRng;
use agilewatts::aw_types::Nanos;

fn golden_workload() -> WorkloadSpec {
    WorkloadSpec::poisson("golden", 60_000.0, Nanos::from_micros(3.0), 0.8)
}

fn golden_run(named: NamedConfig, seed: u64, plan: Option<FaultPlan>) -> RunMetrics {
    let cfg = ServerConfig::new(4, named).with_duration(Nanos::from_millis(80.0));
    let mut sim = SimBuilder::new(cfg, golden_workload(), seed);
    if let Some(plan) = plan {
        sim = sim.with_faults(plan);
    }
    sim.run().into_metrics()
}

/// Bit-exact fingerprints captured on the pre-fault-layer baseline. The
/// common-random-numbers discipline (each fault category owns its own
/// seeded stream; inactive plans never draw) guarantees that compiling
/// in — and even attaching — a zero-rate fault plan perturbs nothing.
const GOLDEN: [(NamedConfig, u64, u64, u64, u64, u64); 2] = [
    (NamedConfig::Aw, 7, 5015, 0x408c_58ee_016d_605b, 0x40ce_d59e_1951_8000, 0x40bd_655d_282c_e288),
    (
        NamedConfig::Baseline,
        21,
        4855,
        0x4096_9bdd_9899_c9da,
        0x40cf_6ca7_308f_5000,
        0x40bd_0c77_6a1e_f322,
    ),
];

#[test]
fn fault_free_runs_match_golden_bits() {
    for (named, seed, completed, power, p99, mean) in GOLDEN {
        for plan in [None, Some(FaultPlan::none())] {
            let attached = plan.is_some();
            let m = golden_run(named, seed, plan);
            assert_eq!(m.completed, completed, "{named} seed={seed} attached={attached}");
            assert_eq!(
                m.avg_core_power.as_milliwatts().to_bits(),
                power,
                "{named} power bits drifted (attached={attached})"
            );
            assert_eq!(
                m.server_latency.p99.as_nanos().to_bits(),
                p99,
                "{named} p99 bits drifted (attached={attached})"
            );
            assert_eq!(
                m.server_latency.mean.as_nanos().to_bits(),
                mean,
                "{named} mean bits drifted (attached={attached})"
            );
            assert!(m.degradation.is_clean(), "{named}: clean run reported degradation");
        }
    }
}

#[test]
fn same_seed_and_plan_reproduce_identical_metrics() {
    let spec = FaultSpec::parse(
        "seed=11,wake-fail=0.25,relock=0.1,drowsy=0.1,lost-wake=0.05,spurious=2000,storm=500,slowdown=20",
    )
    .unwrap();
    let run = || {
        let cfg = ServerConfig::new(4, NamedConfig::Aw)
            .with_duration(Nanos::from_millis(60.0))
            .with_queue_cap(16)
            .with_request_timeout(Nanos::from_micros(400.0));
        SimBuilder::new(cfg, golden_workload(), 13)
            .with_faults(FaultPlan::new(spec.clone()))
            .run()
            .into_metrics()
    };
    let (a, b) = (run(), run());
    assert!(a.degradation.faults_injected > 0, "plan was supposed to fire");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed + plan must be bit-identical");
}

#[test]
fn breaker_demotes_agile_states_and_rearms() {
    // Every agile wake fails through all retries, so each C6A/C6AE exit
    // falls back to a full C6 exit and the per-core breaker trips after
    // K consecutive failures, demoting the governor menu to C1/C1E until
    // the cooldown re-arms it.
    let spec = FaultSpec::parse("seed=5,wake-fail=1.0").unwrap();
    let cfg = ServerConfig::new(4, NamedConfig::Aw).with_duration(Nanos::from_millis(80.0));
    let m = SimBuilder::new(cfg, golden_workload(), 7)
        .with_faults(FaultPlan::new(spec))
        .run()
        .into_metrics();
    let d = &m.degradation;
    assert!(d.fallback_exits > 0, "no full-C6 fallback exits: {d:?}");
    assert!(d.breaker_trips > 0, "breaker never tripped: {d:?}");
    assert!(d.breaker_restores > 0, "breaker never re-armed: {d:?}");
    assert!(d.demoted_selections > 0, "governor never saw the demoted menu: {d:?}");
    // While the breaker is open the governor selects from the demoted
    // menu (C1/C1E/C6), so agile residency must fall versus a healthy
    // run of the same workload and seed, and the legacy twins pick up
    // the idle time the agile states lost.
    let healthy = golden_run(NamedConfig::Aw, 7, None);
    let agile =
        |m: &RunMetrics| m.residency_of(CState::C6A).get() + m.residency_of(CState::C6AE).get();
    let legacy =
        |m: &RunMetrics| m.residency_of(CState::C1).get() + m.residency_of(CState::C1E).get();
    assert!(
        agile(&m) < agile(&healthy),
        "demotion did not reduce agile residency ({} vs healthy {})",
        agile(&m),
        agile(&healthy),
    );
    assert!(legacy(&m) > legacy(&healthy), "legacy twins gained no residency under demotion");
    assert!(m.completed > 0, "server stopped serving under faults");
}

#[test]
fn overload_sheds_are_bounded_and_accounted() {
    let cfg = ServerConfig::new(2, NamedConfig::Aw)
        .with_duration(Nanos::from_millis(40.0))
        .with_queue_cap(32)
        .with_request_timeout(Nanos::from_micros(40.0));
    let w = WorkloadSpec::poisson("overload", 900_000.0, Nanos::from_micros(3.0), 0.8);
    let m = SimBuilder::new(cfg, w, 29).run().into_metrics();
    let d = &m.degradation;
    assert!(d.shed > 0, "bounded queue never shed: {d:?}");
    assert!(d.timeouts > 0, "stale requests never timed out: {d:?}");
    assert!(d.retries > 0, "shed work was never retried: {d:?}");
    assert!(d.retries_exhausted > 0, "retry budget never exhausted: {d:?}");
    assert!(m.completed > 0, "overload protection starved the server entirely");
}

/// A fully featured fleet config (diurnal load, autoscaler, packing)
/// with an optional fleet fault hook attached.
fn chaos_fleet(fleet_faults: Option<FleetFaultSpec>) -> FleetConfig {
    let cores = 4;
    let workload = WorkloadSpec::poisson("fleet-chaos", 1_000.0, Nanos::from_micros(250.0), 0.6);
    let capacity = cores as f64 / workload.mean_service().as_secs();
    let mut config = FleetConfig::new(
        4,
        ServerConfig::new(cores, NamedConfig::NtAw),
        workload,
        0.3 * capacity * 4.0,
    )
    .with_epochs(3, Nanos::from_millis(15.0))
    .with_policy(RoutingPolicy::Packing)
    .with_load(LoadShape::Diurnal { amplitude: 0.5 })
    .with_autoscale(AutoscalePolicy::default());
    if let Some(spec) = fleet_faults {
        config = config.with_fleet_faults(spec);
    }
    config
}

/// Fleet-scale CRN invisibility: a `NoFaults`-equivalent fleet fault
/// plan (attached but inert) leaves the full fleet report byte-identical
/// to the no-hook run — timeline CSV, ledger, every latency bit — at
/// serial and fanned-out worker counts alike. One test function on
/// purpose: [`set_default_jobs`] is process-global and must not race
/// with itself across `#[test]` functions of this binary.
#[test]
fn inert_fleet_fault_plan_is_invisible_at_any_fanout() {
    let fingerprint = |faults: Option<FleetFaultSpec>| {
        let report = FleetSim::new(chaos_fleet(faults)).run();
        format!("{}\n{report:?}", report.timeline_csv())
    };
    let mut ladders: Vec<(usize, String)> = Vec::new();
    for jobs in [1usize, 8] {
        set_default_jobs(jobs);
        assert_eq!(SweepExecutor::current().jobs(), jobs, "override not picked up");
        let bare = fingerprint(None);
        let inert = fingerprint(Some(FleetFaultSpec::none()));
        assert_eq!(bare, inert, "inert fleet fault hook drifted the report at jobs={jobs}");
        ladders.push((jobs, bare));
    }
    set_default_jobs(0); // release the override for anything that follows

    let (_, serial) = &ladders[0];
    for (jobs, fp) in &ladders[1..] {
        assert_eq!(fp, serial, "fleet report drifted between jobs=1 and jobs={jobs}");
    }
}

/// One arbitrary-but-reproducible fault plan per chaos round.
fn random_spec(rng: &mut SimRng, round: u64) -> FaultSpec {
    let p = |rng: &mut SimRng| (rng.uniform() * 0.3 * 100.0).round() / 100.0;
    let spec = format!(
        "seed={},wake-fail={},wake-retries={},relock={},drowsy={},lost-wake={},spurious={},storm={},storm-size={},slowdown={},slow-factor={}",
        1000 + round,
        p(rng),
        1 + (rng.uniform() * 4.0) as u32,
        p(rng),
        p(rng),
        p(rng),
        (rng.uniform() * 5_000.0).round(),
        (rng.uniform() * 1_000.0).round(),
        1 + (rng.uniform() * 128.0) as u32,
        (rng.uniform() * 50.0).round(),
        1.0 + (rng.uniform() * 4.0 * 10.0).round() / 10.0,
    );
    FaultSpec::parse(&spec).unwrap_or_else(|e| panic!("generated bad spec '{spec}': {e}"))
}

/// 32 arbitrary plans, each with overload protection and telemetry on:
/// every run must terminate with invariants intact (conservation of
/// requests, complete residencies, legal life-cycle transitions), and
/// every degradation counter must agree with the telemetry registry —
/// no shed or timed-out request goes unaccounted.
#[test]
fn chaos_plans_terminate_with_invariants_intact() {
    // The plan stream is one serial RNG, so draw all 32 specs first;
    // the rounds themselves are independent simulations (own seed, own
    // plan) and run on the ambient executor.
    let mut rng = SimRng::seed(0xC4A0_5EED);
    let rounds: Vec<(u64, FaultSpec)> =
        (0..32).map(|round| (round, random_spec(&mut rng, round))).collect();
    agilewatts::aw_exec::SweepExecutor::current().map(&rounds, |&(round, ref spec)| {
        let cfg = ServerConfig::new(4, NamedConfig::Aw)
            .with_duration(Nanos::from_millis(30.0))
            .with_queue_cap(8)
            .with_request_timeout(Nanos::from_micros(300.0));
        let w = WorkloadSpec::poisson("chaos", 120_000.0, Nanos::from_micros(3.0), 0.8);
        let output = SimBuilder::new(cfg, w, 100 + round)
            .with_faults(FaultPlan::new(spec.clone()))
            .with_telemetry(100_000)
            .run();
        assert!(
            output.failure.is_none(),
            "round {round} ({spec}) violated invariants:\n{}",
            output.failure.unwrap()
        );
        let d = &output.metrics.degradation;
        let reg = &output.telemetry.as_ref().expect("telemetry enabled").registry;
        assert_eq!(reg.counter("faults.injected"), d.faults_injected, "round {round} ({spec})");
        assert_eq!(reg.counter("overload.shed"), d.shed, "round {round} ({spec})");
        assert_eq!(reg.counter("overload.timeouts"), d.timeouts, "round {round} ({spec})");
        assert_eq!(reg.counter("overload.retries"), d.retries, "round {round} ({spec})");
        assert_eq!(reg.counter("breaker.trips"), d.breaker_trips, "round {round} ({spec})");
        assert_eq!(reg.counter("breaker.restores"), d.breaker_restores, "round {round} ({spec})");
    });
}
