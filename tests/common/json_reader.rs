//! A minimal recursive-descent JSON reader, enough to *validate* the
//! exporters' output and walk its structure. Intentionally independent
//! of the writer in `aw-telemetry` so a writer bug cannot hide behind a
//! matching reader bug. Shared by the integration tests via
//! `#[path = "common/json_reader.rs"] mod json;`.
#![allow(dead_code)] // each test binary uses a different subset

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                if c < 0x20 {
                    return Err(format!("unescaped control char at byte {pos}"));
                }
                // Collect the full UTF-8 sequence.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf-8")?);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}
