//! Quantitative shape checks against the paper's headline claims.
//!
//! Absolute numbers come from a simulator, not the authors' testbed, so
//! each check targets the *shape*: who wins, by roughly what factor, and
//! where the crossovers fall.

use agilewatts::aw_cstates::{CState, FreqLevel};
use agilewatts::aw_power::PpaModel;
use agilewatts::aw_server::HardwareModel;
use agilewatts::experiments::{
    flow_latencies, motivation, snoop_impact, CrossVendor, Fig8, SweepParams, Validation,
};

#[test]
fn claim_c6a_power_is_5_to_7_pct_of_c0() {
    // "while consuming only 7% and 5% of the active state (C0) power"
    let catalog = HardwareModel::skylake_sp().catalog();
    let c0 = catalog.power(CState::C0, FreqLevel::P1);
    let c6a_pct = catalog.power(CState::C6A, FreqLevel::P1) / c0 * 100.0;
    let c6ae_pct = catalog.power(CState::C6AE, FreqLevel::P1) / c0 * 100.0;
    assert!((6.0..8.5).contains(&c6a_pct), "C6A {c6a_pct}%");
    assert!((5.0..6.5).contains(&c6ae_pct), "C6AE {c6ae_pct}%");
}

#[test]
fn claim_transition_speedup_up_to_900x() {
    // "reduce transition-time by up to 900× as compared to ... C6"
    let f = flow_latencies();
    assert!(f.speedup_vs_c6 >= 900.0, "{}", f.speedup_vs_c6);
}

#[test]
fn claim_c6a_flow_budgets() {
    // Sec. 5.2: entry < 20 ns, exit < 80 ns, round trip < 100 ns.
    let f = flow_latencies();
    assert!(f.c6a_entry_measured.as_nanos() < 20.0);
    assert!(f.c6a_exit_measured.as_nanos() < 80.0);
    assert!((f.c6a_entry_measured + f.c6a_exit_measured).as_nanos() < 100.0);
}

#[test]
fn claim_motivation_23_41_55() {
    // Sec. 2: 23% / 41% / 55% savings potential for the three residency
    // profiles from prior work.
    let rows = motivation();
    assert!((rows[0].savings_pct - 23.0).abs() < 1.5, "{}", rows[0].savings_pct);
    assert!((rows[1].savings_pct - 41.0).abs() < 1.5, "{}", rows[1].savings_pct);
    assert!((rows[2].savings_pct - 55.0).abs() < 1.5, "{}", rows[2].savings_pct);
}

#[test]
fn claim_table3_totals() {
    // Table 3 overall: 290–315 mW (C6A), 227–243 mW (C6AE) — our
    // self-consistent recomputation must land within a few mW of those
    // bands.
    let m = PpaModel::skylake();
    let c6a = m.c6a_total();
    let c6ae = m.c6ae_total();
    assert!((c6a.low.as_milliwatts() - 290.0).abs() < 10.0, "{:?}", c6a);
    assert!((c6a.high.as_milliwatts() - 315.0).abs() < 10.0, "{:?}", c6a);
    assert!((c6ae.low.as_milliwatts() - 227.0).abs() < 10.0, "{:?}", c6ae);
    assert!((c6ae.high.as_milliwatts() - 243.0).abs() < 10.0, "{:?}", c6ae);
}

#[test]
fn claim_memcached_savings_shape() {
    // Fig. 8(b): up to ~38% savings at low load, ~10% still at high load,
    // monotonically shrinking; <2% average latency impact at low load.
    let report = Fig8::new(SweepParams {
        qps: vec![80e3, 400e3, 900e3],
        cores: 8,
        duration: agilewatts::aw_types::Nanos::from_millis(120.0),
        seed: 42,
        hw: HardwareModel::skylake_sp(),
    })
    .run();
    let savings: Vec<f64> = report.rows.iter().map(|r| r.power_savings_pct).collect();
    assert!(savings[0] > 20.0, "low-load savings {:.1}%", savings[0]);
    assert!(savings[0] > savings[2], "savings must shrink with load: {savings:?}");
    assert!(savings[2] > 3.0, "high-load savings {:.1}%", savings[2]);

    // End-to-end degradation is negligible because the 117 µs network RTT
    // dominates (Fig. 8c).
    for r in &report.rows {
        assert!(r.expected_e2e_delta_pct < 1.0, "{}", r.expected_e2e_delta_pct);
    }
}

#[test]
fn claim_snoop_bounds_79_68() {
    // Sec. 7.5: 79% quiet savings, 68% under continuous snoops.
    let s = snoop_impact();
    assert!((s.savings_quiet_pct - 79.0).abs() < 1.5, "{}", s.savings_quiet_pct);
    // The paper quotes 68% from slightly different intermediate rounding
    // (it uses 0.470 W for snooping C6A where 0.3025+0.120 = 0.4225 W);
    // accept the 66–73% band.
    assert!((66.0..73.0).contains(&s.savings_snooping_pct), "{}", s.savings_snooping_pct);
}

#[test]
fn claim_power_model_accuracy() {
    // Sec. 6.3: 94–96% accuracy for the analytical model. Our in-sim
    // cross-check must clear 90% on every workload.
    let report = Validation::quick().run();
    assert!(report.min_accuracy_pct() >= 90.0, "{}", report.min_accuracy_pct());
}

#[test]
fn claim_aw_area_overhead_3_to_7_pct() {
    let m = PpaModel::skylake();
    let area = m.area_total();
    assert!((area.low.as_percent() - 3.0).abs() < 1e-9);
    assert!((area.high.as_percent() - 7.0).abs() < 1e-9);
    assert_eq!(area.basis, "core");
}

#[test]
fn claim_c6a_latency_equals_c1_budget() {
    // Table 1: C6A keeps C1's 2 µs software transition budget and 2 µs
    // target residency; C6AE keeps C1E's 10 µs / 20 µs.
    let catalog = HardwareModel::skylake_sp().catalog();
    let c1 = catalog.params(CState::C1);
    let c6a = catalog.params(CState::C6A);
    assert_eq!(c1.transition_time, c6a.transition_time);
    assert_eq!(c1.target_residency, c6a.target_residency);
    let c1e = catalog.params(CState::C1E);
    let c6ae = catalog.params(CState::C6AE);
    assert_eq!(c1e.transition_time, c6ae.transition_time);
    assert_eq!(c1e.target_residency, c6ae.target_residency);
}

#[test]
fn cross_vendor_low_load_ordering() {
    // The heavier a model's legacy C6 round trip, the less often its
    // governor can afford deep sleep -- and the more AW's retention
    // wake recovers. Zen 2's ~530 us CC6 round trip (vs Skylake-SP's
    // 133 us) must therefore make AW's low-load savings *larger* on
    // Rome than on Skylake.
    let report = CrossVendor::new(SweepParams::quick()).run();
    let low = |model: &str| {
        report.entry(model).unwrap_or_else(|| panic!("{model} missing")).report.rows[0]
            .power_savings_pct
    };
    let (sky, zen) = (low("skylake-sp"), low("zen2"));
    assert!(sky > 20.0, "skylake low-load savings {sky:.1}%");
    assert!(zen > sky, "zen2 {zen:.1}% must beat skylake {sky:.1}% at low load");
}
