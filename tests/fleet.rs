//! Fleet-level integration tests: the determinism contract extended to
//! `aw-cluster` (byte-identical reports at any worker count and fleet
//! size), plus the two headline routing claims — packing saves energy at
//! low load, spreading saves tail at high load.

use agilewatts::aw_cluster::{AutoscalePolicy, FleetConfig, FleetSim, LoadShape, RoutingPolicy};
use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_exec::{set_default_jobs, SweepExecutor};
use agilewatts::aw_server::{ServerConfig, WorkloadSpec};
use agilewatts::aw_types::Nanos;

/// A small but fully featured fleet: diurnal load, autoscaler, packing —
/// every code path that could possibly depend on scheduling.
fn fleet_config(servers: usize, utilization: f64, policy: RoutingPolicy) -> FleetConfig {
    let cores = 4;
    let workload = WorkloadSpec::poisson("fleet-test", 1_000.0, Nanos::from_micros(250.0), 0.6);
    let capacity = cores as f64 / workload.mean_service().as_secs();
    let total_qps = utilization * capacity * servers as f64;
    FleetConfig::new(servers, ServerConfig::new(cores, NamedConfig::NtAw), workload, total_qps)
        .with_epochs(3, Nanos::from_millis(15.0))
        .with_policy(policy)
        .with_load(LoadShape::Diurnal { amplitude: 0.5 })
        .with_autoscale(AutoscalePolicy::default())
}

/// A fleet report rendered to its full-precision debug form: `Debug` for
/// `f64` prints the shortest round-trip representation, so equal strings
/// mean equal bits for every finite value in the report.
fn fingerprint(servers: usize) -> String {
    format!("{:?}", FleetSim::new(fleet_config(servers, 0.3, RoutingPolicy::Packing)).run())
}

/// One test function on purpose: [`set_default_jobs`] is process-global,
/// and Rust runs `#[test]` functions of one binary concurrently — the
/// jobs ladder must not race with itself.
#[test]
fn fleet_reports_are_byte_identical_across_worker_counts() {
    let mut runs: Vec<(usize, Vec<String>)> = Vec::new();
    for jobs in [1usize, 2, 8] {
        set_default_jobs(jobs);
        assert_eq!(SweepExecutor::current().jobs(), jobs, "override not picked up");
        runs.push((jobs, [1, 4, 16].map(fingerprint).to_vec()));
    }
    set_default_jobs(0); // release the override for anything that follows

    let (_, serial) = &runs[0];
    for (i, fp) in serial.iter().enumerate() {
        assert!(fp.contains("FleetReport"), "fingerprint {i} looks wrong");
    }
    for (jobs, fps) in &runs[1..] {
        assert_eq!(fps, serial, "fleet report drifted at jobs={jobs}");
    }
}

/// The paper's datacenter argument, fleet edition: at ≤30% aggregate
/// load a packing balancer leaves most packages empty — their uncore
/// sinks to PC6 (~2 W) instead of PC0 (12 W) — so the fleet draws less
/// than under round robin, which keeps every package awake.
#[test]
fn packing_beats_round_robin_energy_at_low_load() {
    let pack = |policy| {
        let cores = 4;
        let workload = WorkloadSpec::poisson("fleet-low", 1_000.0, Nanos::from_micros(250.0), 0.6);
        let capacity = cores as f64 / workload.mean_service().as_secs();
        let config = FleetConfig::new(
            4,
            ServerConfig::new(cores, NamedConfig::NtAw),
            workload,
            0.3 * capacity * 4.0,
        )
        .with_epochs(3, Nanos::from_millis(20.0))
        .with_policy(policy);
        FleetSim::new(config).run()
    };
    let packed = pack(RoutingPolicy::Packing);
    let robin = pack(RoutingPolicy::RoundRobin);
    assert!(
        packed.avg_fleet_power < robin.avg_fleet_power,
        "packing ({}) should draw less than round robin ({}) at 30% load",
        packed.avg_fleet_power,
        robin.avg_fleet_power
    );
    assert!(
        packed.pc6_fraction.as_percent() > robin.pc6_fraction.as_percent(),
        "packing should reach PC6 more often than round robin"
    );
}

/// The other side of the trade: at ≥70% aggregate load packing runs its
/// servers near the 85% fill target while spreading holds every server
/// at 70% — so spreading's queueing tail is strictly shorter.
#[test]
fn spreading_beats_packing_tail_at_high_load() {
    let run = |policy| {
        let cores = 4;
        let workload = WorkloadSpec::poisson("fleet-high", 1_000.0, Nanos::from_micros(250.0), 0.6);
        let capacity = cores as f64 / workload.mean_service().as_secs();
        let config = FleetConfig::new(
            4,
            ServerConfig::new(cores, NamedConfig::NtAw),
            workload,
            0.7 * capacity * 4.0,
        )
        .with_epochs(3, Nanos::from_millis(20.0))
        .with_policy(policy);
        FleetSim::new(config).run()
    };
    let spread = run(RoutingPolicy::Spreading);
    let packed = run(RoutingPolicy::Packing);
    assert!(
        spread.latency.p99 < packed.latency.p99,
        "spreading p99 ({}) should beat packing p99 ({}) at 70% load",
        spread.latency.p99,
        packed.latency.p99
    );
}
