//! The determinism contract of the parallel sweep executor (DESIGN §10):
//! every report must be **byte-identical** no matter how many workers
//! execute the sweep. Results land by point index, each point derives its
//! own RNG from the explicit seed, and no state is shared across points —
//! so `--jobs 1`, `--jobs 2`, and `--jobs 8` are indistinguishable from
//! the outside.

use agilewatts::aw_cluster::{AutoscalePolicy, FleetConfig, FleetSim, LoadShape, RoutingPolicy};
use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_exec::{set_default_jobs, SweepExecutor};
use agilewatts::aw_faults::{FaultPlan, FaultSpec};
use agilewatts::aw_server::{set_default_idle_skip, ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_types::Nanos;
use agilewatts::experiments::{Fig8, SweepParams};

/// The Fig. 8 sweep rendered to its full-precision debug form. `Debug`
/// for `f64` prints the shortest round-trip representation, so equal
/// strings mean equal bits for every finite value in the report.
fn fig8_fingerprint() -> String {
    format!("{:?}", Fig8::new(SweepParams::quick()).run())
}

/// A chaos ledger: three fixed fault plans run as an executor sweep, each
/// reduced to its degradation counters plus the exact p99 bit pattern.
fn chaos_ledger_fingerprint() -> String {
    let plans = [
        "seed=11,wake-fail=0.25,relock=0.1,drowsy=0.1,lost-wake=0.05,spurious=2000,storm=500",
        "seed=12,wake-fail=1.0,wake-retries=2,slowdown=20,slow-factor=2.5",
        "seed=13,drowsy=0.3,spurious=4000,storm=800,storm-size=64",
    ];
    let specs: Vec<FaultSpec> =
        plans.iter().map(|p| FaultSpec::parse(p).expect("fixed plan parses")).collect();
    let rows = SweepExecutor::current().map(&specs, |spec| {
        let cfg = ServerConfig::new(4, NamedConfig::Aw)
            .with_duration(Nanos::from_millis(30.0))
            .with_queue_cap(8)
            .with_request_timeout(Nanos::from_micros(300.0));
        let w = WorkloadSpec::poisson("ledger", 120_000.0, Nanos::from_micros(3.0), 0.8);
        let m = SimBuilder::new(cfg, w, 7)
            .with_faults(FaultPlan::new(spec.clone()))
            .run()
            .into_metrics();
        format!(
            "{:?} p99_bits={:#018x} power_bits={:#018x}",
            m.degradation,
            m.server_latency.p99.as_nanos().to_bits(),
            m.avg_core_power.as_milliwatts().to_bits(),
        )
    });
    rows.join("\n")
}

/// A sharded fleet run — diurnal load with the autoscaler, so epochs
/// differ in population — rendered to its full-precision debug form.
/// The fleet fans each epoch's loaded servers out across the executor's
/// workers, so this exercises intra-run sharding, not just sweep points.
fn fleet_fingerprint() -> String {
    let workload = WorkloadSpec::poisson("shard", 1_000.0, Nanos::from_micros(250.0), 0.6);
    let config = FleetConfig::new(6, ServerConfig::new(4, NamedConfig::NtAw), workload, 14_400.0)
        .with_epochs(4, Nanos::from_millis(20.0))
        .with_policy(RoutingPolicy::Packing)
        .with_load(LoadShape::Diurnal { amplitude: 0.8 })
        .with_autoscale(AutoscalePolicy::default());
    format!("{:?}", FleetSim::new(config).run())
}

/// One test function on purpose: [`set_default_jobs`] and
/// [`set_default_idle_skip`] are process-global, and Rust runs `#[test]`
/// functions of one binary concurrently — the jobs ladder and the
/// engine-mode toggles must not race with each other.
#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let mut runs: Vec<(usize, String, String, String)> = Vec::new();
    for jobs in [1usize, 2, 8] {
        set_default_jobs(jobs);
        assert_eq!(SweepExecutor::current().jobs(), jobs, "override not picked up");
        runs.push((jobs, fig8_fingerprint(), chaos_ledger_fingerprint(), fleet_fingerprint()));
    }
    set_default_jobs(0); // release the override for anything that follows

    let (_, fig8_serial, ledger_serial, fleet_serial) = &runs[0];
    assert!(fig8_serial.contains("Fig8Report"), "fingerprint looks wrong: {fig8_serial}");
    assert_eq!(ledger_serial.lines().count(), 3);
    assert!(fleet_serial.contains("FleetReport"), "fingerprint looks wrong");
    for (jobs, fig8, ledger, fleet) in &runs[1..] {
        assert_eq!(fig8, fig8_serial, "Fig. 8 report drifted at jobs={jobs}");
        assert_eq!(ledger, ledger_serial, "chaos ledger drifted at jobs={jobs}");
        assert_eq!(fleet, fleet_serial, "sharded fleet report drifted at jobs={jobs}");
    }

    // An explicitly-constructed executor obeys the same contract without
    // touching the global override.
    let explicit: Vec<u64> =
        SweepExecutor::with_jobs(8).map(&[1u64, 2, 3, 4, 5, 6, 7, 8, 9], |&x| x * x);
    assert_eq!(explicit, vec![1, 4, 9, 16, 25, 36, 49, 64, 81], "results must land by index");

    // The analytic idle-skip fast path is a pure optimization (DESIGN
    // §15): disabling it must not move a single bit of any report. The
    // engine counters prove the comparison is not vacuous — the skip-on
    // run actually took the inline chain, the skip-off run never did.
    let single = |skip: bool| {
        let cfg = ServerConfig::new(4, NamedConfig::Aw).with_duration(Nanos::from_millis(60.0));
        let w = WorkloadSpec::poisson("skip", 40_000.0, Nanos::from_micros(3.0), 0.8);
        let b = SimBuilder::new(cfg, w, 42);
        (if skip { b } else { b.without_idle_skip() }).run()
    };
    let (on, off) = (single(true), single(false));
    assert!(on.chained > 0, "idle-skip never fired; the comparison proves nothing");
    assert_eq!(off.chained, 0, "skip-off run took the inline chain");
    assert_eq!(
        format!("{:?}", on.metrics),
        format!("{:?}", off.metrics),
        "idle-skip changed the simulation"
    );

    // The same contract holds through the process-global default — the
    // path the CLI's `--no-idle-skip` takes — and at fleet scale, where
    // every simulated server-epoch inherits the default.
    set_default_idle_skip(false);
    let fig8_noskip = fig8_fingerprint();
    let fleet_noskip = fleet_fingerprint();
    set_default_idle_skip(true);
    assert_eq!(&fig8_noskip, fig8_serial, "--no-idle-skip changed the Fig. 8 report");
    assert_eq!(&fleet_noskip, fleet_serial, "--no-idle-skip changed the fleet report");
}
