//! The determinism contract of the parallel sweep executor (DESIGN §10):
//! every report must be **byte-identical** no matter how many workers
//! execute the sweep. Results land by point index, each point derives its
//! own RNG from the explicit seed, and no state is shared across points —
//! so `--jobs 1`, `--jobs 2`, and `--jobs 8` are indistinguishable from
//! the outside.

use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_exec::{set_default_jobs, SweepExecutor};
use agilewatts::aw_faults::{FaultPlan, FaultSpec};
use agilewatts::aw_server::{ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_types::Nanos;
use agilewatts::experiments::{Fig8, SweepParams};

/// The Fig. 8 sweep rendered to its full-precision debug form. `Debug`
/// for `f64` prints the shortest round-trip representation, so equal
/// strings mean equal bits for every finite value in the report.
fn fig8_fingerprint() -> String {
    format!("{:?}", Fig8::new(SweepParams::quick()).run())
}

/// A chaos ledger: three fixed fault plans run as an executor sweep, each
/// reduced to its degradation counters plus the exact p99 bit pattern.
fn chaos_ledger_fingerprint() -> String {
    let plans = [
        "seed=11,wake-fail=0.25,relock=0.1,drowsy=0.1,lost-wake=0.05,spurious=2000,storm=500",
        "seed=12,wake-fail=1.0,wake-retries=2,slowdown=20,slow-factor=2.5",
        "seed=13,drowsy=0.3,spurious=4000,storm=800,storm-size=64",
    ];
    let specs: Vec<FaultSpec> =
        plans.iter().map(|p| FaultSpec::parse(p).expect("fixed plan parses")).collect();
    let rows = SweepExecutor::current().map(&specs, |spec| {
        let cfg = ServerConfig::new(4, NamedConfig::Aw)
            .with_duration(Nanos::from_millis(30.0))
            .with_queue_cap(8)
            .with_request_timeout(Nanos::from_micros(300.0));
        let w = WorkloadSpec::poisson("ledger", 120_000.0, Nanos::from_micros(3.0), 0.8);
        let m = SimBuilder::new(cfg, w, 7)
            .with_faults(FaultPlan::new(spec.clone()))
            .run()
            .into_metrics();
        format!(
            "{:?} p99_bits={:#018x} power_bits={:#018x}",
            m.degradation,
            m.server_latency.p99.as_nanos().to_bits(),
            m.avg_core_power.as_milliwatts().to_bits(),
        )
    });
    rows.join("\n")
}

/// One test function on purpose: [`set_default_jobs`] is process-global,
/// and Rust runs `#[test]` functions of one binary concurrently — the
/// jobs ladder must not race with itself.
#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let mut runs: Vec<(usize, String, String)> = Vec::new();
    for jobs in [1usize, 2, 8] {
        set_default_jobs(jobs);
        assert_eq!(SweepExecutor::current().jobs(), jobs, "override not picked up");
        runs.push((jobs, fig8_fingerprint(), chaos_ledger_fingerprint()));
    }
    set_default_jobs(0); // release the override for anything that follows

    let (_, fig8_serial, ledger_serial) = &runs[0];
    assert!(fig8_serial.contains("Fig8Report"), "fingerprint looks wrong: {fig8_serial}");
    assert_eq!(ledger_serial.lines().count(), 3);
    for (jobs, fig8, ledger) in &runs[1..] {
        assert_eq!(fig8, fig8_serial, "Fig. 8 report drifted at jobs={jobs}");
        assert_eq!(ledger, ledger_serial, "chaos ledger drifted at jobs={jobs}");
    }

    // An explicitly-constructed executor obeys the same contract without
    // touching the global override.
    let explicit: Vec<u64> =
        SweepExecutor::with_jobs(8).map(&[1u64, 2, 3, 4, 5, 6, 7, 8, 9], |&x| x * x);
    assert_eq!(explicit, vec![1, 4, 9, 16, 25, 36, 49, 64, 81], "results must land by index");
}
