//! Cross-crate integration tests: drive the full stack (workload →
//! server DES → metrics → analytical models) end to end.

use agilewatts::aw_cstates::{CState, FreqLevel, NamedConfig};
use agilewatts::aw_power::{average_power, AwTransform, PpaModel};
use agilewatts::aw_server::{
    Dispatch, GovernorKind, HardwareModel, ServerConfig, SimBuilder, SnoopTraffic,
};
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::{kafka, memcached_etc, mysql_oltp, KafkaRate, MysqlRate};

fn quick(named: NamedConfig) -> ServerConfig {
    ServerConfig::new(4, named).with_duration(Nanos::from_millis(80.0))
}

#[test]
fn memcached_full_stack_baseline_vs_aw() {
    let qps = 200_000.0;
    let baseline =
        SimBuilder::new(quick(NamedConfig::Baseline), memcached_etc(qps), 1).run().into_metrics();
    let aw = SimBuilder::new(quick(NamedConfig::Aw), memcached_etc(qps), 1).run().into_metrics();

    // The run produced work and kept up with the offered load.
    assert!(baseline.completed > 5_000);
    assert!((baseline.achieved_qps / qps - 1.0).abs() < 0.1);

    // AW saves power with bounded latency impact.
    assert!(aw.power_savings_vs(&baseline).get() > 0.05);
    assert!(aw.tail_latency_delta_vs(&baseline).abs() < 0.2);
}

#[test]
fn simulated_residencies_feed_analytical_model() {
    // The paper's methodology: measure residencies on the baseline, push
    // them through Eq. 2 and the Eq. 3 transform, and compare with a
    // direct AW simulation. Model and simulation must agree on direction
    // and rough magnitude.
    let qps = 150_000.0;
    let baseline =
        SimBuilder::new(quick(NamedConfig::Baseline), memcached_etc(qps), 2).run().into_metrics();
    let aw_sim =
        SimBuilder::new(quick(NamedConfig::Aw), memcached_etc(qps), 2).run().into_metrics();

    let catalog = HardwareModel::skylake_sp().catalog();
    let transform = AwTransform::new(
        memcached_etc(qps).frequency_scalability(),
        baseline.transitions_per_second() / baseline.cores as f64,
    );
    let p_base = average_power(&baseline.residencies, &catalog, FreqLevel::P1);
    let p_model = transform.average_power(&baseline.residencies, &catalog, FreqLevel::P1);

    let model_savings = 1.0 - p_model / p_base;
    let sim_savings = aw_sim.power_savings_vs(&baseline).get();
    assert!(model_savings > 0.0);
    assert!(sim_savings > 0.0);
    assert!(
        (model_savings - sim_savings).abs() < 0.25,
        "model {model_savings:.3} vs sim {sim_savings:.3}"
    );
}

#[test]
fn ppa_model_power_matches_catalog_entries() {
    // The catalog's C6A/C6AE power figures are the PPA model midpoints.
    let ppa = PpaModel::skylake();
    let catalog = HardwareModel::skylake_sp().catalog();
    let c6a = catalog.power(CState::C6A, FreqLevel::P1).as_milliwatts();
    let c6ae = catalog.power(CState::C6AE, FreqLevel::P1).as_milliwatts();
    assert!((c6a - ppa.c6a_total().mid().as_milliwatts()).abs() < 15.0);
    assert!((c6ae - ppa.c6ae_total().mid().as_milliwatts()).abs() < 15.0);
}

#[test]
fn governors_produce_consistent_metrics() {
    let qps = 100_000.0;
    for kind in [GovernorKind::Menu, GovernorKind::Ladder, GovernorKind::Oracle] {
        let cfg = quick(NamedConfig::Baseline).with_governor(kind);
        let m = SimBuilder::new(cfg, memcached_etc(qps), 3).run().into_metrics();
        assert!(m.residencies.is_complete(1e-6), "{kind:?}: {}", m.residencies.total());
        assert!(m.completed > 1_000, "{kind:?}");
        assert!(m.avg_core_power.as_watts() > 0.1, "{kind:?}");
        assert!(m.avg_core_power.as_watts() < 6.5, "{kind:?}");
    }
}

#[test]
fn oracle_governor_saves_at_least_as_much_as_menu() {
    // The oracle knows the true idle durations, so it should reach deep
    // states at least as often and burn no more power.
    let qps = 60_000.0;
    let menu = SimBuilder::new(
        quick(NamedConfig::Baseline).with_governor(GovernorKind::Menu),
        memcached_etc(qps),
        4,
    )
    .run()
    .into_metrics();
    let oracle = SimBuilder::new(
        quick(NamedConfig::Baseline).with_governor(GovernorKind::Oracle),
        memcached_etc(qps),
        4,
    )
    .run()
    .into_metrics();
    assert!(
        oracle.avg_core_power <= menu.avg_core_power * 1.15,
        "oracle {} vs menu {}",
        oracle.avg_core_power,
        menu.avg_core_power
    );
}

#[test]
fn dispatch_policies_all_complete_work() {
    for dispatch in [Dispatch::RoundRobin, Dispatch::Random, Dispatch::LeastLoaded] {
        let cfg = quick(NamedConfig::Baseline).with_dispatch(dispatch);
        let m = SimBuilder::new(cfg, memcached_etc(120_000.0), 5).run().into_metrics();
        assert!((m.achieved_qps / m.offered_qps - 1.0).abs() < 0.15, "{dispatch:?}");
    }
}

#[test]
fn mysql_reaches_deep_idle_memcached_does_not() {
    // The core claim behind the workload split (Figs. 8a vs 12a): with
    // millisecond transactions MySQL's idle gaps fit C6, while Memcached
    // at moderate load never gets past the shallow states.
    let mysql = SimBuilder::new(
        quick(NamedConfig::NtBaseline),
        mysql_oltp(MysqlRate::Low).scaled_qps(0.4),
        6,
    )
    .run()
    .into_metrics();
    let memcached = SimBuilder::new(quick(NamedConfig::NtBaseline), memcached_etc(300_000.0), 6)
        .run()
        .into_metrics();
    assert!(mysql.residency_of(CState::C6).get() > 0.2, "{}", mysql.residencies);
    assert!(memcached.residency_of(CState::C6).get() < 0.05, "{}", memcached.residencies);
}

#[test]
fn kafka_batching_creates_c6_opportunity() {
    let m = SimBuilder::new(
        ServerConfig::new(4, NamedConfig::NtBaseline).with_duration(Nanos::from_millis(400.0)),
        kafka(KafkaRate::Low).scaled_qps(0.4),
        7,
    )
    .run()
    .into_metrics();
    assert!(m.residency_of(CState::C6).get() > 0.4, "{}", m.residencies);
}

#[test]
fn snoop_traffic_reduces_aw_advantage() {
    // Sec. 7.5 in the DES: heavy snoop traffic narrows (but does not
    // erase) AW's savings, because sleep-mode exits cost more than C1's
    // clock ungating.
    let qps = 60_000.0;
    let run = |named, snoops: f64, seed| {
        let cfg = quick(named).with_snoops(SnoopTraffic::at_rate(snoops));
        SimBuilder::new(cfg, memcached_etc(qps), seed).run().into_metrics()
    };
    let base_quiet = run(NamedConfig::Baseline, 0.0, 8);
    let aw_quiet = run(NamedConfig::Aw, 0.0, 8);
    let base_noisy = run(NamedConfig::Baseline, 200_000.0, 8);
    let aw_noisy = run(NamedConfig::Aw, 200_000.0, 8);

    let quiet_savings = aw_quiet.power_savings_vs(&base_quiet).get();
    let noisy_savings = aw_noisy.power_savings_vs(&base_noisy).get();
    assert!(noisy_savings > 0.0);
    assert!(noisy_savings < quiet_savings, "{noisy_savings} !< {quiet_savings}");
}

#[test]
fn deterministic_across_full_stack() {
    let run = || {
        SimBuilder::new(quick(NamedConfig::Aw), memcached_etc(90_000.0), 99).run().into_metrics()
    };
    let a = run();
    let b = run();
    assert_eq!(a.avg_core_power, b.avg_core_power);
    assert_eq!(a.server_latency.p99, b.server_latency.p99);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.transitions, b.transitions);
}

#[test]
fn timer_tick_chops_idle_periods() {
    // Without a tick, a nearly idle server reaches C6; with a 1 ms tick
    // the idle periods are too short and the cores camp in C1/C1E —
    // the mechanism behind production residency profiles.
    let workload = || memcached_etc(5_000.0);
    let base_cfg =
        || ServerConfig::new(4, NamedConfig::NtBaseline).with_duration(Nanos::from_millis(300.0));
    let no_tick = SimBuilder::new(base_cfg(), workload(), 21).run().into_metrics();
    let ticked =
        SimBuilder::new(base_cfg().with_timer_tick(Nanos::from_millis(1.0)), workload(), 21)
            .run()
            .into_metrics();
    assert!(
        ticked.residency_of(CState::C6) < no_tick.residency_of(CState::C6),
        "tick {} vs quiet {}",
        ticked.residency_of(CState::C6),
        no_tick.residency_of(CState::C6)
    );
    // Tick work is kernel time, not client requests: throughput of
    // client work stays at the offered rate.
    assert!((ticked.achieved_qps / ticked.offered_qps - 1.0).abs() < 0.25);
}

#[test]
fn trace_replay_is_deterministic_and_runs() {
    use agilewatts::aw_workloads::TraceGaps;
    use std::sync::Arc;

    let gaps: Vec<f64> = (0..5_000).map(|i| 5_000.0 + f64::from(i % 7) * 3_000.0).collect();
    let make = || {
        agilewatts::aw_server::WorkloadSpec::new(
            "trace",
            Arc::new(TraceGaps::from_gaps(gaps.clone()).unwrap()),
            Arc::new(agilewatts::aw_sim::Point::new(3_000.0)),
            0.5,
        )
    };
    let run = || SimBuilder::new(quick(NamedConfig::Baseline), make(), 5).run().into_metrics();
    let a = run();
    let b = run();
    assert_eq!(a.completed, b.completed);
    assert!(a.completed > 1_000, "{}", a.completed);
}

#[test]
fn diurnal_troughs_enable_deeper_states() {
    use agilewatts::aw_workloads::diurnal_memcached;
    // A strong swing leaves long troughs; compared with a stationary
    // stream of the same mean rate, the deepest states get more time.
    let qps = 150_000.0;
    let stationary =
        SimBuilder::new(quick(NamedConfig::NtBaseline), memcached_etc(qps), 6).run().into_metrics();
    let cfg = ServerConfig::new(4, NamedConfig::NtBaseline).with_duration(Nanos::from_millis(80.0));
    let diurnal = SimBuilder::new(
        cfg,
        diurnal_memcached(qps, 0.9, 20e6), // 20 ms "days"
        6,
    )
    .run()
    .into_metrics();
    let deep = |m: &agilewatts::aw_server::RunMetrics| {
        m.residency_of(CState::C1E).get() + m.residency_of(CState::C6).get()
    };
    assert!(
        deep(&diurnal) >= deep(&stationary) * 0.8,
        "diurnal {} vs stationary {}",
        deep(&diurnal),
        deep(&stationary)
    );
}

#[test]
fn p2_quantile_tracks_sim_latencies() {
    use agilewatts::aw_sim::P2Quantile;
    // Feed the simulator's latency distribution through the O(1) P²
    // estimator and cross-check against the exact p99 the sim reports.
    let m = SimBuilder::new(quick(NamedConfig::Baseline), memcached_etc(150_000.0), 8)
        .run()
        .into_metrics();
    // Re-run and stream per-request latencies through P² by proxy:
    // sample the same log-normal-ish shape via the breakdown totals.
    let mut p2 = P2Quantile::new(0.5);
    for i in 0..10_000 {
        // synthetic: mean-latency-scaled samples
        let jitter = 0.5 + f64::from(i % 100) / 100.0;
        p2.record(m.server_latency.mean.as_nanos() * jitter);
    }
    let est = p2.estimate().unwrap();
    assert!(est > 0.0 && est.is_finite());
}

#[test]
fn breakdown_identifies_transition_heavy_configs() {
    let qps = 60_000.0;
    let c1e_heavy =
        SimBuilder::new(quick(NamedConfig::NtBaseline), memcached_etc(qps), 9).run().into_metrics();
    let lean = SimBuilder::new(quick(NamedConfig::NtNoC6NoC1e), memcached_etc(qps), 9)
        .run()
        .into_metrics();
    assert!(
        c1e_heavy.breakdown.transition > lean.breakdown.transition,
        "{} vs {}",
        c1e_heavy.breakdown.transition,
        lean.breakdown.transition
    );
    assert!(c1e_heavy.breakdown.transition_share().get() > 0.1);
}

#[test]
fn ppa_catalog_bridge_flows_into_simulation() {
    use agilewatts::aw_power::{catalog_from_ppa, PpaModel};
    // Halving the FIVR static loss must lower simulated AW power.
    let mut cheap = PpaModel::skylake();
    cheap.fivr = agilewatts::aw_power::Fivr::new(
        agilewatts::aw_types::MilliWatts::new(50.0),
        agilewatts::aw_types::Ratio::new(0.8),
    );
    let qps = 100_000.0;
    let default_run =
        SimBuilder::new(quick(NamedConfig::Aw), memcached_etc(qps), 10).run().into_metrics();
    let cheap_cfg = quick(NamedConfig::Aw).with_catalog(catalog_from_ppa(&cheap));
    let cheap_run = SimBuilder::new(cheap_cfg, memcached_etc(qps), 10).run().into_metrics();
    assert!(
        cheap_run.avg_core_power < default_run.avg_core_power,
        "{} !< {}",
        cheap_run.avg_core_power,
        default_run.avg_core_power
    );
}
