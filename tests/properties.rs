//! Property-based tests over the core invariants of the stack.

use agilewatts::aw_cstates::{
    CState, CStateConfig, IdleGovernor, MenuGovernor, NamedConfig, OracleGovernor,
};
use agilewatts::aw_pma::{PmaFsm, Ufpg, WakePolicy};
use agilewatts::aw_power::{average_power, AwTransform, ResidencyVector};
use agilewatts::aw_server::HardwareModel;
use agilewatts::aw_sim::{Distribution, EventQueue, Exponential, LogNormal, SimRng};
use agilewatts::aw_types::{MilliWatts, Nanos, Ratio};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue always pops in non-decreasing time order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::new(t), i);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_nanos() >= prev);
            prev = t.as_nanos();
        }
    }

    /// Residency vectors built from arbitrary partitions are complete and
    /// yield power between the deepest and shallowest state powers.
    #[test]
    fn average_power_is_bounded(parts in prop::collection::vec(0.01f64..1.0, 4)) {
        let total: f64 = parts.iter().sum();
        let states = [CState::C0, CState::C1, CState::C1E, CState::C6];
        let r = ResidencyVector::new(
            states.iter().zip(&parts).map(|(&s, &p)| (s, Ratio::new(p / total))),
        );
        prop_assert!(r.is_complete(1e-9));
        let catalog = HardwareModel::skylake_sp().base_catalog();
        let p = average_power(&r, &catalog, agilewatts::aw_cstates::FreqLevel::P1);
        prop_assert!(p >= catalog.power(CState::C6, agilewatts::aw_cstates::FreqLevel::P1));
        prop_assert!(p <= catalog.power(CState::C0, agilewatts::aw_cstates::FreqLevel::P1));
    }

    /// The AW transform conserves total residency and never increases
    /// average power for legacy-shallow-heavy profiles.
    #[test]
    fn aw_transform_conserves_and_saves(
        c0 in 0.0f64..0.9,
        c1_share in 0.1f64..1.0,
        scalability in 0.0f64..1.0,
        rate in 0.0f64..100_000.0,
    ) {
        let idle = 1.0 - c0;
        let c1 = idle * c1_share;
        let c1e = idle - c1;
        let baseline = ResidencyVector::new([
            (CState::C0, Ratio::new(c0)),
            (CState::C1, Ratio::new(c1)),
            (CState::C1E, Ratio::new(c1e)),
        ]);
        let t = AwTransform::new(scalability, rate);
        let aw = t.apply(&baseline);
        prop_assert!(aw.is_complete(1e-9), "total {}", aw.total());
        prop_assert_eq!(aw.get(CState::C1), Ratio::ZERO);
        prop_assert_eq!(aw.get(CState::C1E), Ratio::ZERO);

        let catalog = HardwareModel::skylake_sp().catalog();
        let level = agilewatts::aw_cstates::FreqLevel::P1;
        let p0 = average_power(&baseline, &catalog, level);
        let p1 = average_power(&aw, &catalog, level);
        // The busy stretch is bounded by rate × 100 ns, which is ≤ 1% of
        // time here; C6A/C6AE save >1.1 W on every replaced idle second,
        // so with any meaningful idle time AW must not be worse.
        if idle > 0.2 {
            prop_assert!(p1 <= p0 + MilliWatts::new(1.0), "{p1} > {p0}");
        }
    }

    /// Governors only ever pick enabled states, for any idle history.
    #[test]
    fn governor_respects_enable_mask(
        idles in prop::collection::vec(1.0f64..1e7, 1..64),
        config_idx in 0usize..10,
    ) {
        let named = NamedConfig::ALL[config_idx];
        let config = named.config();
        let catalog = HardwareModel::skylake_sp().catalog();
        let mut menu = MenuGovernor::new();
        let mut oracle = OracleGovernor::new();
        for &i in &idles {
            menu.observe_idle(Nanos::new(i));
            let s = menu.select(&config, &catalog, None);
            prop_assert!(config.is_enabled(s), "{named}: menu picked {s}");
            let o = oracle.select(&config, &catalog, Some(Nanos::new(i)));
            prop_assert!(config.is_enabled(o), "{named}: oracle picked {o}");
        }
    }

    /// The oracle's choice never violates the residency rule: the chosen
    /// state's target residency fits within the true idle duration, or no
    /// enabled state fits at all.
    #[test]
    fn oracle_choice_fits_residency(idle_us in 0.1f64..100_000.0) {
        let config = NamedConfig::Baseline.config();
        let catalog = HardwareModel::skylake_sp().catalog();
        let idle = Nanos::from_micros(idle_us);
        let mut oracle = OracleGovernor::new();
        let s = oracle.select(&config, &catalog, Some(idle));
        let fits = catalog.params(s).target_residency <= idle;
        let nothing_fits = config
            .enabled_states()
            .iter()
            .all(|&c| catalog.params(c).target_residency > idle);
        prop_assert!(fits || nothing_fits);
    }

    /// PMA round trips preserve arbitrary context values and stay within
    /// the latency budget, regardless of interleaved snoops.
    #[test]
    fn pma_round_trip_context_safe(value: u64, snoops in prop::collection::vec(1u32..8, 0..6)) {
        let mut fsm = PmaFsm::new_c6a();
        fsm.write_context(value);
        let entry = fsm.run_entry().unwrap();
        for &n in &snoops {
            fsm.run_snoop(n).unwrap();
        }
        let exit = fsm.run_exit().unwrap();
        prop_assert_eq!(fsm.read_context(), Some(value));
        prop_assert!(entry.total().as_nanos() < 20.0);
        prop_assert!(exit.total().as_nanos() < 80.0);
    }

    /// For any zone split, staggered wake keeps the in-rush peak at the
    /// single-zone level and conserves delivered charge.
    #[test]
    fn staggered_wake_bounds_inrush(zones in 1usize..12, area in 0.5f64..10.0) {
        let ufpg = Ufpg::with_zones(zones, area, 16);
        let st = ufpg.wake(WakePolicy::Staggered);
        let si = ufpg.wake(WakePolicy::Simultaneous);
        prop_assert!(st.peak_current() <= si.peak_current() + 1e-9);
        prop_assert!((st.profile.charge() - si.profile.charge()).abs() < 1e-6);
        // Staggered latency equals total area at the reference rate.
        prop_assert!((st.latency.as_nanos() - area * 15.0).abs() < 1e-6);
    }

    /// Sampled distributions never produce negative values and their
    /// empirical means land near the analytical means.
    #[test]
    fn distributions_match_their_means(mean in 10.0f64..10_000.0, sigma in 0.0f64..1.0, seed: u64) {
        let exp = Exponential::with_mean(mean);
        let ln = LogNormal::from_median(mean, sigma);
        let mut rng = SimRng::seed(seed);
        let n = 4_000;
        let mut exp_sum = 0.0;
        let mut ln_sum = 0.0;
        for _ in 0..n {
            let e = exp.sample(&mut rng);
            let l = ln.sample(&mut rng);
            prop_assert!(e >= 0.0);
            prop_assert!(l > 0.0);
            exp_sum += e;
            ln_sum += l;
        }
        let exp_mean = exp_sum / f64::from(n);
        prop_assert!((exp_mean - mean).abs() / mean < 0.15, "{exp_mean} vs {mean}");
        // Log-normal tails are fat at high sigma: only check the body.
        if sigma < 0.5 {
            let ln_mean = ln_sum / f64::from(n);
            prop_assert!((ln_mean - ln.mean()).abs() / ln.mean() < 0.2);
        }
    }

    /// The AW twin of any configuration preserves the Turbo flag, the
    /// state count, and replaces every shallow legacy state.
    #[test]
    fn aw_twin_is_structure_preserving(config_idx in 0usize..10) {
        let named = NamedConfig::ALL[config_idx];
        let config = named.config();
        let twin = config.aw_twin();
        prop_assert_eq!(config.turbo(), twin.turbo());
        prop_assert_eq!(config.enabled_states().len(), twin.enabled_states().len());
        prop_assert!(!twin.is_enabled(CState::C1));
        prop_assert!(!twin.is_enabled(CState::C1E));
        // Twin of the twin is itself (idempotence).
        let twice: CStateConfig = twin.aw_twin();
        prop_assert_eq!(twin, twice);
    }
}
