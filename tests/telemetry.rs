//! Integration tests for the telemetry stack: event ordering, slice
//! reconstruction, registry/event-stream consistency, and the Chrome
//! trace exporter's golden format.

use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_server::{ServerConfig, SimBuilder};
use agilewatts::aw_telemetry::{EventKind, TelemetryRecorder, TelemetryReport};
use agilewatts::aw_types::Nanos;
use agilewatts::aw_workloads::memcached_etc;
use proptest::prelude::*;

/// See `tests/common/json_reader.rs` — the reader is shared with the
/// attribution integration tests.
#[path = "common/json_reader.rs"]
mod json;

fn traced_run(named: NamedConfig, cores: usize) -> TelemetryReport {
    let config = ServerConfig::new(cores, named).with_duration(Nanos::from_millis(30.0));
    let out = SimBuilder::new(config, memcached_etc(80_000.0), 7).with_telemetry(1_000_000).run();
    let (metrics, report) = (out.metrics, out.telemetry);
    let report = report.expect("telemetry enabled");
    assert_eq!(
        metrics.telemetry.as_ref().expect("summary attached"),
        &report.summary,
        "RunMetrics carries the same summary as the report"
    );
    report
}

#[test]
fn trace_events_are_time_ordered() {
    let report = traced_run(NamedConfig::Aw, 4);
    assert!(report.events.len() > 1_000, "expected a busy trace");
    for pair in report.events.windows(2) {
        assert!(
            pair[0].time <= pair[1].time,
            "events out of order: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn per_core_cstate_slices_do_not_overlap() {
    let report = traced_run(NamedConfig::Baseline, 4);
    // Reconstruct each core's slices exactly as the Chrome exporter does:
    // an exit event at `t` with residency `r` is the slice [t − r, t].
    for core in 0..4u32 {
        let mut prev_end = Nanos::new(f64::NEG_INFINITY);
        let mut slices = 0;
        for event in report.events.iter().filter(|e| e.core == core) {
            if let EventKind::CStateExit { residency, state } = event.kind {
                let start = event.time - residency;
                assert!(
                    start.as_nanos() >= prev_end.as_nanos() - 1e-6,
                    "core {core}: slice '{state}' starting {start} overlaps \
                     previous slice ending {prev_end}"
                );
                prev_end = event.time;
                slices += 1;
            }
        }
        assert!(slices > 10, "core {core} produced only {slices} slices");
    }
}

#[test]
fn governor_metrics_match_a_fold_over_the_events() {
    let report = traced_run(NamedConfig::Aw, 4);
    // Every governor decision is an event; every outcome scored against
    // it is an event too. The summary's aggregates must equal a plain
    // fold over the stream (the buffer was large enough to drop nothing).
    assert_eq!(report.summary.events_dropped, 0);
    let decisions = report
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GovernorDecision { .. }))
        .count() as u64;
    let outcomes: Vec<bool> = report
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::IdleOutcome { premature, .. } => Some(premature),
            _ => None,
        })
        .collect();
    let mispredicts = outcomes.iter().filter(|&&p| p).count() as u64;
    assert_eq!(report.summary.governor_decisions, decisions);
    assert_eq!(report.summary.governor_mispredicts, mispredicts);
    assert!(report.summary.mispredict_rate >= 0.0 && report.summary.mispredict_rate <= 1.0);
}

#[test]
fn chrome_export_is_valid_json_with_required_keys() {
    let cores = 3;
    let report = traced_run(NamedConfig::Aw, cores);
    let doc = json::parse(&report.chrome_trace_json()).expect("exporter emits valid JSON");

    let events = doc.get("traceEvents").and_then(json::Value::as_array).expect("traceEvents");
    assert!(!events.is_empty());

    let mut tracks = std::collections::BTreeSet::new();
    let mut slices = 0;
    for event in events {
        let ph = event.get("ph").and_then(json::Value::as_str).expect("every event has ph");
        let pid = event.get("pid").and_then(json::Value::as_f64).expect("every event has pid");
        let tid = event.get("tid").and_then(json::Value::as_f64).expect("every event has tid");
        assert_eq!(pid, 0.0);
        match ph {
            "X" => {
                let ts = event.get("ts").and_then(json::Value::as_f64).expect("X has ts");
                let dur = event.get("dur").and_then(json::Value::as_f64).expect("X has dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                tracks.insert(tid as u64);
                slices += 1;
            }
            "i" => {
                assert!(event.get("ts").is_some(), "instant has ts");
            }
            "M" => {
                assert!(event.get("args").is_some(), "metadata carries args");
            }
            other => panic!("unexpected phase '{other}'"),
        }
    }
    assert!(slices > 100, "expected plenty of slices, got {slices}");
    // One track per core: every core contributed slices.
    assert_eq!(tracks.len(), cores, "tracks {tracks:?}");

    // Thread-name metadata names each core's track.
    for core in 0..cores {
        let name = format!("core {core}");
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(json::Value::as_str) == Some("M")
                    && e.get("args").and_then(|a| a.get("name")).and_then(json::Value::as_str)
                        == Some(name.as_str())
            }),
            "missing thread_name metadata for {name}"
        );
    }
}

#[test]
fn metrics_export_is_valid_json_with_headline_numbers() {
    let report = traced_run(NamedConfig::Aw, 2);
    let doc = json::parse(&report.metrics_json()).expect("exporter emits valid JSON");
    let summary = doc.get("summary").expect("summary section");
    for key in [
        "mispredict_rate",
        "events_per_sec",
        "event_queue_depth_hwm",
        "run_queue_depth_hwm",
        "governor_decisions",
    ] {
        assert!(summary.get(key).is_some(), "summary is missing {key}");
    }
    let counters = doc.get("counters").expect("counters section");
    assert!(counters.get("governor.decisions").and_then(json::Value::as_f64).unwrap() > 0.0);
    let gauges = doc.get("gauges").expect("gauges section");
    assert!(gauges.get("runqueue.depth").is_some());
    let histograms = doc.get("histograms").expect("histograms section");
    assert!(histograms.get("cstate.residency_ns").is_some());
}

#[test]
fn pma_flow_traces_emit_into_sinks() {
    use agilewatts::aw_pma::PmaFsm;
    use agilewatts::aw_telemetry::{RingBufferSink, TraceSink};

    let mut fsm = PmaFsm::new_c6a();
    let mut sink = RingBufferSink::new(64);
    let base = Nanos::from_micros(5.0);
    let entry = fsm.run_entry().expect("fresh FSM is active");
    entry.emit(&mut sink, 3, base);
    assert_eq!(sink.len(), entry.steps().len());
    let events: Vec<_> = sink.events().collect();
    // Steps land at base + their flow-relative start, in order.
    assert_eq!(events[0].time, base);
    for e in &events {
        assert_eq!(e.core, 3);
        assert!(matches!(e.kind, EventKind::FlowStep { .. }));
    }
    // A disabled sink records nothing.
    let mut null = agilewatts::aw_telemetry::NullSink;
    entry.emit(&mut null, 0, Nanos::ZERO);
    assert!(!null.is_enabled());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The registry's aggregates equal a fold over the raw event stream,
    /// for arbitrary interleavings of recorder calls.
    #[test]
    fn registry_aggregates_equal_event_fold(ops in prop::collection::vec((0u8..5, 0u32..3, 1.0f64..1e6), 1..200)) {
        let mut rec = TelemetryRecorder::new(3, 10_000);
        let mut clock = 0.0;
        for &(op, core, jitter) in &ops {
            clock += jitter;
            let now = Nanos::new(clock);
            match op {
                0 => rec.enqueue(core, now, 1),
                1 => rec.dequeue(core, now, 0),
                2 => rec.wake(core, now, "arrival"),
                3 => rec.snoop(core, now, "C1"),
                _ => rec.turbo_engage(core, now),
            }
        }
        let report = rec.into_report(Nanos::new(clock));
        prop_assert_eq!(report.summary.events_dropped, 0);
        let count = |f: fn(&EventKind) -> bool| {
            report.events.iter().filter(|e| f(&e.kind)).count() as u64
        };
        let enqueues = count(|k| matches!(k, EventKind::QueueEnqueue { .. }));
        let dequeues = count(|k| matches!(k, EventKind::QueueDequeue { .. }));
        let wakes = count(|k| matches!(k, EventKind::WakeInterrupt { .. }));
        let snoops = count(|k| matches!(k, EventKind::SnoopService { .. }));
        let turbos = count(|k| matches!(k, EventKind::TurboEngage));
        prop_assert_eq!(report.registry.counter("runqueue.enqueues"), enqueues);
        prop_assert_eq!(report.registry.counter("runqueue.dequeues"), dequeues);
        prop_assert_eq!(report.registry.counter("wakes"), wakes);
        prop_assert_eq!(report.registry.counter("snoops.serviced"), snoops);
        prop_assert_eq!(report.registry.counter("turbo.engagements"), turbos);
        prop_assert_eq!(report.summary.events_recorded, ops.len() as u64);
    }
}
