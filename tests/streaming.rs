//! Streaming-observation integration tests: the windows pushed over a
//! live stream rebuild the batch artifacts byte-for-byte — for a single
//! server (attribution timeline CSV) and for a fleet (per-epoch
//! timeline CSV) — including across the bounded channel to a consumer
//! thread and at any worker count.

use agilewatts::aw_cluster::{
    fleet_stream, AutoscalePolicy, FleetConfig, FleetEpochEvent, FleetObserver, FleetSim,
    FleetWindow, LoadShape, RoutingPolicy,
};
use agilewatts::aw_cstates::NamedConfig;
use agilewatts::aw_exec::{set_default_jobs, SweepExecutor};
use agilewatts::aw_server::{ServerConfig, SimBuilder, WorkloadSpec};
use agilewatts::aw_telemetry::{window_stream, TimelineCollector, WindowObserver};
use agilewatts::aw_types::Nanos;

fn server_sim() -> SimBuilder {
    let config = ServerConfig::new(4, NamedConfig::Aw).with_duration(Nanos::from_millis(60.0));
    let workload = WorkloadSpec::poisson("stream-test", 120_000.0, Nanos::from_micros(20.0), 0.7);
    SimBuilder::new(config, workload, 42).with_attribution(Nanos::from_millis(5.0))
}

/// The streamed server windows, consumed on another thread through the
/// bounded channel, rebuild the batch attribution timeline CSV exactly.
#[test]
fn streamed_server_windows_rebuild_the_batch_timeline_csv() {
    let batch = server_sim().run();
    let batch_csv = batch.attribution.as_ref().expect("attribution requested").timeline.to_csv();

    // In-process collector: the simplest consumer.
    let collector = TimelineCollector::new(Nanos::from_millis(5.0));
    let streamed = server_sim().run_streaming(Box::new(collector));
    let streamed_csv =
        streamed.attribution.as_ref().expect("attribution requested").timeline.to_csv();
    assert_eq!(streamed_csv, batch_csv, "streaming must not perturb the run");

    // Cross-thread: windows travel the bounded channel to a consumer
    // thread that rebuilds the timeline as they arrive, in order.
    let (tx, mut rx) = window_stream(4);
    let consumer = std::thread::spawn(move || {
        let mut collector = TimelineCollector::new(Nanos::from_millis(5.0));
        let mut last = None;
        while let Some(w) = rx.recv() {
            if let Some(prev) = last {
                assert!(w.window.start() > prev, "windows arrived out of order");
            }
            last = Some(w.window.start());
            collector.on_window(&w);
        }
        collector.into_timeline().to_csv()
    });
    let piped = server_sim().run_streaming(Box::new(tx));
    let cross_csv = consumer.join().expect("consumer panicked");
    assert_eq!(cross_csv, batch_csv, "cross-thread rebuild drifted");
    assert_eq!(
        piped.attribution.as_ref().expect("attribution requested").timeline.to_csv(),
        batch_csv
    );
}

/// A small fleet with every scheduling-sensitive feature enabled.
fn fleet_config() -> FleetConfig {
    let cores = 4;
    let workload = WorkloadSpec::poisson("stream-fleet", 1_000.0, Nanos::from_micros(250.0), 0.6);
    let capacity = cores as f64 / workload.mean_service().as_secs();
    FleetConfig::new(3, ServerConfig::new(cores, NamedConfig::NtAw), workload, 0.3 * capacity * 3.0)
        .with_epochs(3, Nanos::from_millis(15.0))
        .with_policy(RoutingPolicy::Packing)
        .with_load(LoadShape::Diurnal { amplitude: 0.5 })
        .with_autoscale(AutoscalePolicy::default())
}

/// Rebuilds the fleet timeline CSV from streamed epochs alone.
#[derive(Default)]
struct CsvRebuilder {
    csv: String,
}

impl FleetObserver for CsvRebuilder {
    fn on_epoch(&mut self, event: &FleetEpochEvent) {
        if self.csv.is_empty() {
            self.csv.push_str(FleetWindow::CSV_HEADER);
        }
        self.csv.push_str(&event.window.csv_row());
    }
}

/// One test function on purpose: [`set_default_jobs`] is process-global
/// and `#[test]` functions of one binary run concurrently. At every
/// worker count, the CSV rebuilt from streamed epochs — both in-process
/// and across the bounded channel — equals the batch timeline CSV.
#[test]
fn streamed_fleet_epochs_rebuild_the_timeline_csv_at_any_worker_count() {
    let mut reference: Option<String> = None;
    for jobs in [1usize, 8] {
        set_default_jobs(jobs);
        assert_eq!(SweepExecutor::current().jobs(), jobs, "override not picked up");

        let batch_csv = FleetSim::new(fleet_config()).run().timeline_csv();

        let mut rebuilder = CsvRebuilder::default();
        let report = FleetSim::new(fleet_config()).run_observed(&mut rebuilder);
        assert_eq!(rebuilder.csv, batch_csv, "in-process stream drifted at jobs={jobs}");
        assert_eq!(report.timeline_csv(), batch_csv, "observation perturbed the run");

        // Across the bounded channel: a slow consumer thread (capacity 1
        // forces the producer to block on every epoch) still sees every
        // window, in order.
        let (tx, mut rx) = fleet_stream(1);
        let producer = std::thread::spawn(move || {
            let mut tx = tx;
            FleetSim::new(fleet_config()).run_observed(&mut tx)
        });
        let mut rebuilder = CsvRebuilder::default();
        while let Some(event) = rx.recv() {
            rebuilder.on_epoch(&event);
        }
        let report = producer.join().expect("producer panicked");
        assert_eq!(rebuilder.csv, batch_csv, "cross-thread stream drifted at jobs={jobs}");
        assert_eq!(report.timeline_csv(), batch_csv);

        match &reference {
            None => reference = Some(batch_csv),
            Some(first) => assert_eq!(&batch_csv, first, "timeline drifted at jobs={jobs}"),
        }
    }
    set_default_jobs(0); // release the override for anything that follows
}
