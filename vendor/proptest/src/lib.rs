//! Offline stand-in for [proptest](https://proptest-rs.github.io/proptest).
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. This stand-in implements the subset the workspace's
//! property tests use — the `proptest!` macro, range/tuple/`Just`/
//! `select`/`vec` strategies, `prop_map`/`prop_perturb` combinators, and
//! the `prop_assert*` macros — with a deterministic per-test RNG so
//! failures reproduce exactly. It does **not** shrink failing inputs; a
//! failure reports the sampled values via the panic message instead.

pub mod strategy;
pub mod test_runner;

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategy constructors, mirroring proptest's `prop` module paths.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies (`prop::sample::select`).
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::RngCore;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that samples its arguments deterministically
/// for the configured number of cases and runs the body on each sample.
/// Plain `arg: Type` parameters draw from the type's [`strategy::Arbitrary`]
/// implementation, as in real proptest.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $crate::__proptest_bind!(prop_rng; $($params)*);
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($params)*) $body
            )*
        }
    };
}

/// Internal: binds one `pat in strategy` or `name: Type` parameter at a
/// time, sampling from the given RNG.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:pat_param in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:pat_param in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure, aborting the
/// whole test rather than shrinking as real proptest would).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
