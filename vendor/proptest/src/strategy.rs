//! Value-generation strategies: ranges, tuples, collections, combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: `sample`
/// draws one concrete value directly.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Perturbs generated values with access to an owned RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

/// Types that can be drawn "from anywhere": the sampler behind plain
/// `arg: Type` parameters in [`proptest!`](crate::proptest).
pub trait Arbitrary {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64_raw() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64_raw() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.uniform()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        let value = self.inner.sample(rng);
        (self.f)(value, rng.fork())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.uniform()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + (self.end - self.start) * rng.uniform() as f32
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = u64::from(self.end - self.start);
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(u64::from(span)) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32);

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty i64 range");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty f64 range");
        self.start() + (self.end() - self.start()) * rng.uniform()
    }
}

macro_rules! impl_unsigned_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer range");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64_raw() as $t;
                }
                self.start() + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_unsigned_range_inclusive_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_inclusive_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer range");
                let span = (*self.end() as $u).wrapping_sub(*self.start() as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64_raw() as $t;
                }
                self.start().wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range_inclusive_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A size specification for [`vec`]: a fixed length or a length range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector strategy: `len` elements (fixed or ranged) drawn from
/// `element`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Uniformly selects one of the given options.
///
/// # Panics
///
/// Panics when sampling from an empty option list.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests", 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (2.0f64..5.0).sample(&mut r);
            assert!((2.0..5.0).contains(&x));
            let n = (1usize..4).sample(&mut r);
            assert!((1..4).contains(&n));
            let s = (-5i32..7).sample(&mut r);
            assert!((-5..7).contains(&s));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut r = rng();
        let v = vec((0.0f64..1.0, 1usize..5), 2..9).sample(&mut r);
        assert!((2..9).contains(&v.len()));
        for (x, n) in v {
            assert!((0.0..1.0).contains(&x));
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn map_and_just() {
        let mut r = rng();
        let doubled = (1u32..10).prop_map(|x| x * 2).sample(&mut r);
        assert_eq!(doubled % 2, 0);
        assert_eq!(Just(7u8).sample(&mut r), 7);
    }

    #[test]
    fn select_draws_from_options() {
        let mut r = rng();
        for _ in 0..100 {
            let x = select(vec!['a', 'b', 'c']).sample(&mut r);
            assert!(['a', 'b', 'c'].contains(&x));
        }
    }
}
