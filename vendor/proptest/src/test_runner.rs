//! The deterministic RNG behind sampled test cases.

/// Minimal stand-in for `rand::RngCore` as re-exported by proptest's
/// prelude (tests use it for `rng.next_u32()` inside `prop_perturb`).
pub trait RngCore {
    /// The next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// A deterministic xoshiro256++ generator seeded from the test's module
/// path, name, and case index, so every case reproduces bit-identically
/// across runs and is independent of execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds a generator from a test identifier and case index (FNV-1a over
    /// the name, mixed with the case through SplitMix64).
    #[must_use]
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ (u64::from(case) << 32 | u64::from(case));
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Forks an independent generator (used to hand an owned RNG to
    /// `prop_perturb` closures).
    #[must_use]
    pub fn fork(&mut self) -> TestRng {
        let mut sm = self.next_u64();
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Uniform value in `[0, 1)`.
    #[must_use]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The next raw 64-bit value, without requiring the [`RngCore`] trait
    /// to be in the caller's scope.
    #[must_use]
    pub fn next_u64_raw(&mut self) -> u64 {
        RngCore::next_u64(self)
    }

    /// Uniform integer in `[0, n)` (multiply-shift with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::y", 4);
        assert_ne!(TestRng::deterministic("x::y", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::deterministic("below", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
