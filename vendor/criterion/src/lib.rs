//! Offline stand-in for [criterion](https://bheisler.github.io/criterion.rs/book/).
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. This stand-in keeps the workspace's `harness = false`
//! benches compiling and producing useful wall-clock numbers: each
//! `bench_function` warms up briefly, runs a fixed sampling loop, and
//! prints mean/min per-iteration times. There are no statistical
//! comparisons, plots, or saved baselines.

use std::time::{Duration, Instant};

/// How batch setup output is sized (accepted for API compatibility; the
/// stand-in treats all variants identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Prevents the optimizer from discarding a value (forwards to
/// [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing loop handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher { samples, total: Duration::ZERO, min: Duration::MAX, iters: 0 }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }

    /// Times `routine` over inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name}: no iterations");
            return;
        }
        let mean = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
        println!("{name}: mean {mean:?}, min {:?} ({} iterations)", self.min, self.iters);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: u64) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: u64) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        let mut b = Bencher::new(self.parent.sample_size);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().sample_size(3).bench_function("counter", |b| {
            b.iter(|| calls += 1);
        });
        // 3 timed + 1 warm-up.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_prefix_names_and_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.sample_size(2).bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        c.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
