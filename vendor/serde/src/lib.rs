//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `serde` cannot be fetched. The workspace uses serde derives
//! purely as annotations today (nothing links a serializer: JSON export in
//! `aw-telemetry` is hand-rolled), so this stand-in provides just enough
//! surface for `#[derive(Serialize, Deserialize)]` and `#[serde(...)]`
//! attributes to compile: marker traits plus no-op derive macros.
//!
//! If registry access returns, deleting `vendor/` and restoring the
//! `serde = "1"` workspace dependency restores the real thing without any
//! source change elsewhere.

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not implement it; nothing in the workspace bounds
/// on it. It exists so `use serde::Serialize` resolves in the type
/// namespace exactly as with real serde.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::ser`, re-exporting the [`Serialize`] marker.
pub mod ser {
    pub use crate::Serialize;
}

/// Stand-in for `serde::de`, re-exporting the deserialization markers.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
