//! No-op derive macros backing the offline `serde` stand-in.
//!
//! Each derive accepts the `#[serde(...)]` helper attribute (so existing
//! annotations like `#[serde(skip)]` keep compiling) and expands to
//! nothing: the marker traits in the `serde` stand-in carry no methods, so
//! there is nothing to implement.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
